"""Queueing-theoretic models used by LaSS (§3 of the paper).

* :mod:`repro.core.queueing.mmc` — classical M/M/c/FCFS steady-state
  analysis: state probabilities, Erlang-C, mean and percentile waiting
  times.
* :mod:`repro.core.queueing.heterogeneous` — the Alves et al. upper
  bounds for M/M/c queues whose servers (containers) have different
  service rates, used after deflation.
* :mod:`repro.core.queueing.sizing` — Algorithm 1: the iterative search
  for the smallest number of containers such that a high percentile of
  the waiting time stays below ``t = d − s_p``, plus a vectorised fast
  path used for the scalability experiment (Figure 5).
* :mod:`repro.core.queueing.solver` — the control-plane fast path: a
  candidate-vectorised wait-probability kernel over a process-wide
  log-factorial table, an exact-key LRU memo, per-function warm starts,
  and an epoch-batched sizing entry point (results bit-identical to the
  Algorithm 1 oracles in :mod:`~repro.core.queueing.sizing`).
* :mod:`repro.core.queueing.distributions` — service-time distributions
  used by the simulator and by the profile-driven estimators.
"""

from repro.core.queueing.mmc import MMcQueue, erlang_c, mmc_state_probabilities
from repro.core.queueing.heterogeneous import HeterogeneousMMcQueue
from repro.core.queueing.mgc import MGcQueue, required_containers_mgc
from repro.core.queueing.solver import (
    SizingQuery,
    SizingResult,
    SizingSolver,
    caches_disabled,
    default_solver,
    wait_probabilities,
)
from repro.core.queueing.sizing import (
    required_containers,
    required_containers_fast,
    required_containers_naive,
    required_containers_heterogeneous,
)
from repro.core.queueing.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    ServiceTimeDistribution,
    ShiftedExponential,
)

__all__ = [
    "MMcQueue",
    "erlang_c",
    "mmc_state_probabilities",
    "HeterogeneousMMcQueue",
    "MGcQueue",
    "required_containers_mgc",
    "SizingQuery",
    "SizingResult",
    "SizingSolver",
    "caches_disabled",
    "default_solver",
    "wait_probabilities",
    "required_containers",
    "required_containers_fast",
    "required_containers_naive",
    "required_containers_heterogeneous",
    "ServiceTimeDistribution",
    "Exponential",
    "Deterministic",
    "LogNormal",
    "ShiftedExponential",
]
