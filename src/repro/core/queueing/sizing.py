"""Algorithm 1: iterative container sizing (paper §3.1–3.3).

Given an observed arrival rate ``λ``, a service rate ``μ`` (of a
standard container), an SLO deadline ``d`` and a target percentile
``p`` (e.g. 0.95 or 0.99), the controller must find the smallest number
of containers ``c`` such that the ``p``-th percentile of the waiting
time is at most ``t = d − s_p``, where ``s_p`` is the ``p``-th
percentile of the service time.  The paper's Algorithm 1 starts from
the current allocation and increments ``c`` until the waiting-time
bound reaches ``p``.

Three variants are provided:

* :func:`required_containers` — the faithful reference implementation of
  Algorithm 1 (homogeneous containers).
* :func:`required_containers_fast` — a vectorised fast path built on the
  :mod:`repro.core.queueing.solver` kernel: candidates are evaluated in
  batched numpy passes and bracketed exponentially instead of one at a
  time.  This plays the role of the paper's Julia implementation in the
  Figure 5 scalability experiment.
* :func:`required_containers_heterogeneous` — sizing when the existing
  containers have been deflated to different service rates: it answers
  "how many *additional standard* containers must be added so that the
  heterogeneous bound meets the SLO" (used in §6.2.2 / Figure 4).

The memoized / warm-started control-plane entry points live in
:class:`repro.core.queueing.solver.SizingSolver`; the functions here are
the stateless oracles it is tested against
(:func:`required_containers_naive` deliberately stays the slow pure-
Python "Scala path" and must never be optimised).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.queueing.heterogeneous import HeterogeneousMMcQueue
from repro.core.queueing.mmc import MMcQueue
from repro.core.queueing.solver import SizingResult, smallest_satisfying


def wait_budget_from_slo(
    slo_deadline: float,
    mu: float,
    percentile: float = 0.95,
    service_time_percentile: Optional[float] = None,
) -> float:
    """Compute the waiting-time budget ``t = d − s_p``.

    The paper sets ``t_p99 = d − 1/μ_p99``: the request may, in the worst
    case, experience a high-percentile service time, so only the
    remainder of the deadline can be spent waiting.  When the SLO is
    defined purely on waiting time (the paper's default experimental
    setting: "95% of requests should *start* being processed within
    100 ms"), pass ``service_time_percentile=0`` to use the full
    deadline as waiting budget.

    Parameters
    ----------
    slo_deadline:
        The SLO deadline ``d`` in seconds.
    mu:
        Mean service rate of a standard container (req/s).
    percentile:
        The SLO percentile (used for the service-time percentile when an
        explicit one is not given).
    service_time_percentile:
        The high-percentile service time ``s_p`` to subtract.  ``None``
        uses the exponential-distribution percentile
        ``−ln(1 − p)/μ``; ``0`` disables the subtraction.
    """
    if slo_deadline <= 0:
        raise ValueError("SLO deadline must be positive")
    if mu <= 0:
        raise ValueError("service rate must be positive")
    if service_time_percentile is None:
        service_time_percentile = -math.log(1.0 - percentile) / mu
    budget = slo_deadline - float(service_time_percentile)
    return max(0.0, budget)


def required_containers(
    lam: float,
    mu: float,
    wait_budget: float,
    percentile: float = 0.95,
    current_containers: int = 0,
    max_containers: int = 100_000,
) -> SizingResult:
    """Reference implementation of the paper's Algorithm 1.

    Starting from ``current_containers`` (the paper starts from the
    number already in the system), increment ``c`` until
    ``P(Q <= wait_budget) >= percentile``.  The returned ``c`` is always
    at least the minimum needed for stability (``⌈λ/μ⌉`` plus one when
    exactly critical).

    Raises
    ------
    ValueError
        If ``max_containers`` is reached without satisfying the SLO
        (cannot happen for a positive budget, but guards against
        pathological inputs such as a zero budget with high load).
    """
    if lam < 0:
        raise ValueError("arrival rate must be non-negative")
    if mu <= 0:
        raise ValueError("service rate must be positive")
    if wait_budget < 0:
        raise ValueError("wait budget must be non-negative")
    if not 0 < percentile < 1:
        raise ValueError("percentile must be in (0, 1)")

    if lam == 0:
        return SizingResult(containers=0, achieved_probability=1.0,
                            wait_budget=wait_budget, iterations=0)

    c = max(1, int(current_containers))
    # ensure stability before evaluating the bound
    min_stable = int(math.floor(lam / mu)) + 1
    c = max(c, min_stable)
    iterations = 0
    while c <= max_containers:
        iterations += 1
        queue = MMcQueue(lam, mu, c)
        if queue.is_stable:
            probability = queue.wait_bound_probability(wait_budget)
            if probability >= percentile:
                return SizingResult(
                    containers=c,
                    achieved_probability=probability,
                    wait_budget=wait_budget,
                    iterations=iterations,
                )
        c += 1
    raise ValueError(
        f"could not satisfy SLO with up to {max_containers} containers "
        f"(lam={lam}, mu={mu}, t={wait_budget}, p={percentile})"
    )


def required_containers_naive(
    lam: float,
    mu: float,
    wait_budget: float,
    percentile: float = 0.95,
    current_containers: int = 0,
    max_containers: int = 100_000,
) -> SizingResult:
    """A deliberately naive Algorithm 1, standing in for the paper's Scala path.

    The paper compares its original Scala implementation (slow, and prone
    to numerical precision problems on large container counts) against an
    optimised Julia implementation.  This function is the analogous slow
    path in Python: the M/M/c state probabilities are accumulated term by
    term in pure Python floating point (no log-space math, no numpy), and
    candidate container counts are tried one at a time.  Its cost grows
    roughly quadratically with the final container count, which is what
    produces the "reference" curve of the Figure 5 reproduction.

    The answer is identical to :func:`required_containers` whenever the
    naive floating-point evaluation does not underflow/overflow.
    """
    if lam < 0:
        raise ValueError("arrival rate must be non-negative")
    if mu <= 0:
        raise ValueError("service rate must be positive")
    if wait_budget < 0:
        raise ValueError("wait budget must be non-negative")
    if not 0 < percentile < 1:
        raise ValueError("percentile must be in (0, 1)")
    if lam == 0:
        return SizingResult(0, 1.0, wait_budget, 0)

    r = lam / mu
    c = max(1, int(current_containers), int(math.floor(r)) + 1)
    iterations = 0
    while c <= max_containers:
        iterations += 1
        rho = r / c
        if rho < 1.0:
            # normalising constant, term by term
            term = 1.0
            norm = 1.0
            for n in range(1, c):
                term *= r / n
                norm += term
            term_c = term * r / c if c >= 1 else 1.0
            norm += term_c / (1.0 - rho)
            # cumulative probability up to L
            L = int(math.floor(wait_budget * c * mu + c - 1 + 1e-12))
            cumulative = 0.0
            term = 1.0
            for n in range(0, L + 1):
                if n > 0:
                    term *= r / min(n, c)
                cumulative += term
            probability = min(1.0, cumulative / norm) if norm > 0 else 0.0
            if probability >= percentile:
                return SizingResult(c, probability, wait_budget, iterations)
        c += 1
    raise ValueError("could not satisfy SLO within max_containers")


def required_containers_fast(
    lam: float,
    mu: float,
    wait_budget: float,
    percentile: float = 0.95,
    current_containers: int = 0,
    max_containers: int = 100_000,
) -> SizingResult:
    """Vectorised Algorithm 1 (the "Julia implementation" fast path of Figure 5).

    A stateless wrapper over the solver's candidate-vectorised search:
    geometrically growing rung groups bracket the answer in a few numpy
    passes, then the bracket is swept in one batched kernel call.  The
    result is identical to :func:`required_containers`.  (The previous
    per-candidate Python loop — "vectorised" in name only — was deleted
    in favour of :func:`repro.core.queueing.solver.wait_probabilities`.)
    """
    if lam < 0:
        raise ValueError("arrival rate must be non-negative")
    if mu <= 0:
        raise ValueError("service rate must be positive")
    if wait_budget < 0:
        raise ValueError("wait budget must be non-negative")
    if not 0 < percentile < 1:
        raise ValueError("percentile must be in (0, 1)")
    if lam == 0:
        return SizingResult(0, 1.0, wait_budget, 0)

    min_stable = int(math.floor(lam / mu)) + 1
    lo = max(1, int(current_containers), min_stable)
    containers, probability, iterations = smallest_satisfying(
        lam, mu, wait_budget, percentile, lo, max_containers
    )
    return SizingResult(containers=containers, achieved_probability=probability,
                        wait_budget=wait_budget, iterations=iterations)


def required_containers_heterogeneous(
    lam: float,
    existing_mus: Sequence[float],
    standard_mu: float,
    wait_budget: float,
    percentile: float = 0.95,
    max_additional: int = 100_000,
) -> SizingResult:
    """How many *additional standard* containers are needed on top of an
    existing (possibly deflated, heterogeneous) set.

    This implements the scenario of §6.2.2 / Figure 4: some containers
    have been deflated, the function is now under-provisioned, and LaSS
    adds full-size containers until the heterogeneous waiting-time bound
    (Alves et al.) meets the SLO.

    Returns a :class:`SizingResult` whose ``containers`` field is the
    *total* number of containers (existing + added).
    """
    if standard_mu <= 0:
        raise ValueError("standard service rate must be positive")
    if lam < 0:
        raise ValueError("arrival rate must be non-negative")
    existing = [float(m) for m in existing_mus]
    if any(m <= 0 for m in existing):
        raise ValueError("existing service rates must be positive")
    if lam == 0:
        return SizingResult(len(existing), 1.0, wait_budget, 0)

    iterations = 0
    added = 0
    while added <= max_additional:
        iterations += 1
        mus = existing + [standard_mu] * added
        if mus and sum(mus) > lam:
            queue = HeterogeneousMMcQueue(lam, mus)
            probability = queue.wait_bound_probability(wait_budget)
            if probability >= percentile:
                return SizingResult(
                    containers=len(mus),
                    achieved_probability=probability,
                    wait_budget=wait_budget,
                    iterations=iterations,
                )
        added += 1
    raise ValueError("could not satisfy SLO within max_additional containers")


__all__ = [
    "SizingResult",
    "wait_budget_from_slo",
    "required_containers",
    "required_containers_naive",
    "required_containers_fast",
    "required_containers_heterogeneous",
]
