"""The LaSS controller: the epoch loop that ties the whole system together.

This module plays the role of the "LaSS module" the paper adds to the
OpenWhisk controller (§5, Figure 2b).  It owns:

* the data path — every arriving request is recorded for rate
  estimation and dispatched straight to a container by weighted round
  robin;
* the control path — once per epoch it estimates each function's
  arrival rate, sizes *all* registered functions in one batched call to
  the memoized queueing-model solver
  (:class:`repro.core.queueing.solver.SizingSolver` — warm-started per
  function, bit-identical to the reference Algorithm 1), detects
  overload, applies weighted fair sharing, and executes the resulting
  scaling / reclamation actions through the per-node invokers.

In the absence of resource pressure, over-provisioned functions are
scaled down *lazily* (containers are only marked for termination and
reclaimed when some other function actually needs the capacity), and
under-provisioned ones get new standard-size containers.  Under
overload, the configured reclamation policy (termination or deflation)
produces an immediate action plan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cluster import EdgeCluster, FunctionDeployment
from repro.cluster.container import Container, ContainerState
from repro.cluster.invoker import InvokerPool
from repro.core.allocation.autoscaler import Autoscaler, ScalingDecision, ScalingQuery
from repro.core.queueing.solver import SizingSolver
from repro.core.allocation.hierarchy import SchedulingTree
from repro.core.allocation.placement import PlacementRequest, plan_placements
from repro.core.dispatch import SharedQueueDispatcher
from repro.core.allocation.reclamation import (
    CreateAction,
    DeflateAction,
    DeflationPolicy,
    InflateAction,
    ReclamationPlan,
    TerminateAction,
    TerminationPolicy,
)
from repro.core.policy import ControlPolicy
from repro.core.estimation.ewma import EwmaEstimator
from repro.core.estimation.service_time import OnlineServiceTimeEstimator, ServiceTimeProfile
from repro.core.estimation.sliding_window import DualWindowRateEstimator
from repro.metrics.collector import EpochSnapshot, FunctionEpochStats, MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request


class ReclamationPolicy(enum.Enum):
    """Which reclamation mechanism the controller uses under overload (§4.2)."""

    TERMINATION = "termination"
    DEFLATION = "deflation"


@dataclass
class ControllerConfig:
    """Tunable parameters of the LaSS controller.

    Defaults follow the paper's prototype: epochs of ten seconds, rate
    estimation from a 2-minute long window and a 10-second short window
    sampled every 5 seconds with a 2× burst switch, a 95th-percentile
    SLO, EWMA smoothing biased towards the most recent epoch, and a
    conservative 30 % deflation threshold.
    """

    epoch_length: float = 10.0
    rate_sample_interval: float = 5.0
    long_window: float = 120.0
    short_window: float = 10.0
    burst_factor: float = 2.0
    ewma_alpha: float = 0.7
    percentile: float = 0.95
    reclamation: ReclamationPolicy = ReclamationPolicy.DEFLATION
    deflation_threshold: float = 0.3
    deflation_increment: float = 0.05
    lazy_termination: bool = True
    placement_strategy: str = "best_fit"
    use_fast_sizing: bool = True
    subtract_service_percentile: bool = False
    #: learn service times online from completed requests (otherwise only
    #: offline profiles / deployment defaults are used)
    online_learning: bool = True
    #: memoize exact-key model solves in the sizing solver (never changes
    #: results — the solver is a pure function of its inputs)
    sizing_cache: bool = True
    #: warm-start each function's sizing search from last epoch's answer
    #: (provably exact; see repro.core.queueing.solver)
    sizing_warm_start: bool = True
    #: seconds after a node failure/recovery during which the epoch loop
    #: suppresses voluntary scale-downs (lazy draining marks): while the
    #: fleet is churning, rate estimates are poisoned by the outage and
    #: freed capacity would be reclaimed from functions that are about to
    #: need it back.  Overload reclamation (fair-share enforcement) is
    #: never suppressed — under genuine pressure capacity must move.
    fault_recovery_grace: float = 30.0

    def __post_init__(self) -> None:
        """Validate the configuration parameters."""
        if self.epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        if self.rate_sample_interval <= 0:
            raise ValueError("rate_sample_interval must be positive")
        if not 0 < self.percentile < 1:
            raise ValueError("percentile must be in (0, 1)")
        if self.fault_recovery_grace < 0:
            raise ValueError("fault_recovery_grace must be non-negative")


@dataclass
class _FunctionState:
    """The controller's per-function bookkeeping."""

    deployment: FunctionDeployment
    rate_estimator: DualWindowRateEstimator
    ewma: EwmaEstimator
    online_service: OnlineServiceTimeEstimator
    profile: Optional[ServiceTimeProfile] = None
    default_service_rate: float = 10.0
    last_decision: Optional[ScalingDecision] = None
    arrivals_this_epoch: int = 0


class LassController(ControlPolicy):
    """The LaSS control plane for one edge cluster.

    Registered as the ``"lass"`` entry of the control-plane policy
    registry (:mod:`repro.core.policy`); the baselines conform to the
    same :class:`~repro.core.policy.ControlPolicy` contract, so any of
    them can replace this controller in a scenario.

    Parameters
    ----------
    engine:
        Shared simulation engine.
    cluster:
        The cluster whose containers this controller manages.
    config:
        Controller parameters.
    scheduling_tree:
        Optional user → function hierarchy for fair sharing; when omitted
        a flat tree is built from the deployments' weights.
    metrics:
        Optional metrics collector (one is created if omitted).
    service_profiles:
        Optional offline service-time profiles, keyed by function name.
    default_service_rates:
        Fallback μ per function (req/s on a standard container) used before
        any profile or online observation is available.
    """

    name = "lass"

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        config: Optional[ControllerConfig] = None,
        scheduling_tree: Optional[SchedulingTree] = None,
        metrics: Optional[MetricsCollector] = None,
        service_profiles: Optional[Dict[str, ServiceTimeProfile]] = None,
        default_service_rates: Optional[Dict[str, float]] = None,
    ) -> None:
        """Wire the controller to the cluster and build its per-function state."""
        self.engine = engine
        self.cluster = cluster
        self.config = config or ControllerConfig()
        self.metrics = metrics or MetricsCollector()
        self.dispatcher = SharedQueueDispatcher(engine, on_complete=self._record_completion)
        self.dispatcher.attach_cluster(cluster)
        self.balancer = self.dispatcher.balancer
        self.invokers = InvokerPool(cluster)
        self.solver = SizingSolver(
            cache_size=65_536 if self.config.sizing_cache else 0,
            warm_start=self.config.sizing_warm_start,
        )
        self.autoscaler = Autoscaler(
            percentile=self.config.percentile,
            use_fast_sizing=self.config.use_fast_sizing,
            subtract_service_percentile=self.config.subtract_service_percentile,
            solver=self.solver,
        )
        self._tree = scheduling_tree
        self._functions: Dict[str, _FunctionState] = {}
        self._started = False
        self._epoch_count = 0
        #: voluntary scale-downs are suppressed until this simulation time
        #: (pushed forward by node failure/recovery notifications)
        self._suppress_reclamation_until = -float("inf")

        service_profiles = service_profiles or {}
        default_service_rates = default_service_rates or {}
        for deployment in cluster.deployments:
            self.register_function(
                deployment,
                profile=service_profiles.get(deployment.name),
                default_service_rate=default_service_rates.get(deployment.name, 10.0),
            )
        cluster.on_container_warm(self._on_container_warm)

    # ------------------------------------------------------------------
    # Registration / lifecycle
    # ------------------------------------------------------------------
    def register_function(
        self,
        deployment: FunctionDeployment,
        profile: Optional[ServiceTimeProfile] = None,
        default_service_rate: float = 10.0,
    ) -> None:
        """Register a deployed function with the controller."""
        if deployment.name in self._functions:
            return
        self._functions[deployment.name] = _FunctionState(
            deployment=deployment,
            rate_estimator=DualWindowRateEstimator(
                self.config.long_window, self.config.short_window, self.config.burst_factor
            ),
            ewma=EwmaEstimator(self.config.ewma_alpha),
            online_service=OnlineServiceTimeEstimator(),
            profile=profile,
            default_service_rate=default_service_rate,
        )

    def start(self) -> None:
        """Begin the periodic epoch loop and the faster rate-sampling loop."""
        if self._started:
            return
        self._started = True
        self.engine.schedule(
            self.config.epoch_length, self._epoch_tick, priority=SimulationEngine.PRIORITY_CONTROL
        )
        if self.config.rate_sample_interval < self.config.epoch_length:
            self.engine.schedule(
                self.config.rate_sample_interval,
                self._rate_tick,
                priority=SimulationEngine.PRIORITY_CONTROL,
            )

    @property
    def scheduling_tree(self) -> SchedulingTree:
        """The fair-share hierarchy (built flat from weights if not supplied)."""
        if self._tree is None:
            users: Dict[str, float] = {}
            functions: Dict[str, str] = {}
            weights: Dict[str, float] = {}
            for state in self._functions.values():
                dep = state.deployment
                users.setdefault(dep.user, 1.0)
                functions[dep.name] = dep.user
                weights[dep.name] = dep.weight
            if len(users) <= 1:
                self._tree = SchedulingTree.flat(weights)
            else:
                self._tree = SchedulingTree.two_level(users, functions, weights)
        return self._tree

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> None:
        """Handle one arriving invocation request (the data path).

        The arrival is recorded for rate estimation and the request is
        handed to the shared-queue dispatcher: it starts immediately on an
        idle container (chosen by weighted round robin, so deflated
        containers take proportionally less of the load) or waits in the
        function's FCFS queue until a container frees up or warms up.
        """
        state = self._state(request.function_name)
        state.rate_estimator.record_arrival(request.arrival_time)
        state.arrivals_this_epoch += 1
        self.metrics.record_request(request)

        started = self.dispatcher.submit(request)
        if not started and not self.cluster.has_containers(request.function_name):
            # nothing exists yet for this function: get one container started
            self._create_containers(request.function_name, 1)

    def _on_container_warm(self, container: Container) -> None:
        """A container finished cold start: drain its function's queue onto it."""
        if container.function_name not in self._functions:
            return
        self.dispatcher.drain(container.function_name)

    def _record_completion(self, request: Request, container: Container) -> None:
        """Completion callback: metrics plus optional online service-time learning."""
        self.metrics.record_completion(request)
        if self.config.online_learning and request.service_time is not None:
            state = self._functions.get(request.function_name)
            if state is not None:
                state.online_service.observe(container.cpu_fraction, request.service_time)

    def columnar_plan(self):
        """LaSS's per-request work, described for the columnar kernel.

        Mirrors :meth:`dispatch` / :meth:`_record_completion` exactly:
        arrivals fold into the (lazily created) per-function rate
        estimator and epoch counter, an arrival queued against an empty
        function creates one container, and completions feed the online
        service-time estimator when online learning is enabled.
        """
        from repro.sim.columnar import ColumnarPlan

        def fold_arrivals(name: str, times: List[float]) -> None:
            """Fold a batch of arrival times into one function's estimator state."""
            state = self._state(name)
            state.rate_estimator.record_arrivals_many(times)
            state.arrivals_this_epoch += len(times)

        def create_on_empty(name: str) -> None:
            """Bootstrap one container for a function that has none."""
            self._create_containers(name, 1)

        fold_completions = None
        if self.config.online_learning:

            def fold_completions(name: str, cpu_fractions: List[float],
                                 service_times: List[float]) -> None:
                """Feed a batch of completions into the online service-time estimator."""
                state = self._functions.get(name)
                if state is not None:
                    state.online_service.observe_many(cpu_fractions, service_times)

        return ColumnarPlan(
            dispatcher=self.dispatcher,
            collector=self.metrics,
            fold_arrivals=fold_arrivals,
            create_on_empty=create_on_empty,
            fold_completions=fold_completions,
        )

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def _epoch_tick(self) -> None:
        """Run one control epoch, then reschedule the next tick."""
        self.run_epoch()
        self.engine.schedule(
            self.config.epoch_length, self._epoch_tick, priority=SimulationEngine.PRIORITY_CONTROL
        )

    def _rate_tick(self) -> None:
        """The fast (5-second) sampling loop: react to bursts between epochs.

        The paper's headline responsiveness numbers — container
        reprovisioning within tens to hundreds of milliseconds of a load
        spike — come from sampling the arrival-rate windows every few
        seconds and scaling *up* immediately when the short window detects
        a burst or when the current allocation cannot even keep the queue
        stable.  Scaling down and fair-share arbitration stay on the
        slower epoch cadence.
        """
        now = self.engine.now
        for name, state in self._functions.items():
            observation = state.rate_estimator.estimate(now)
            if observation.rate <= 0:
                continue
            current = self.cluster.containers_of(name, include_draining=False)
            service_rate = self._service_rate(state, cpu_fraction=1.0)
            min_stable = self.autoscaler.minimum_stable_containers(observation.rate, service_rate)
            needs_reaction = observation.burst_detected or len(current) < min_stable
            if not needs_reaction:
                continue
            if observation.burst_detected:
                self.metrics.increment("burst_switches")
            decision = self.autoscaler.desired_containers(
                function_name=name,
                arrival_rate=observation.rate,
                service_rate=service_rate,
                slo_deadline=state.deployment.slo_deadline or 1.0,
                current_containers=len(current),
                min_containers=state.deployment.min_containers,
            )
            if decision.desired_containers > len(current):
                self._scale_up(name, decision.desired_containers - len(current))
                self.metrics.increment("reactive_scale_ups")
        self._drain_all_queues()
        self.engine.schedule(
            self.config.rate_sample_interval,
            self._rate_tick,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    def run_epoch(self) -> EpochSnapshot:
        """Run one control epoch and return the snapshot that was recorded."""
        self._epoch_count += 1
        now = self.engine.now

        # estimation first (stateful: EWMA updates, burst counters), then all
        # model solves in one epoch-batched call to the sizing solver
        names = list(self._functions)
        queries = [self._scaling_query(name, self._functions[name], now) for name in names]
        batch = self.autoscaler.decide_batch(queries)

        decisions: Dict[str, ScalingDecision] = {}
        demands_cpu: Dict[str, float] = {}
        for name, decision in zip(names, batch):
            state = self._functions[name]
            decisions[name] = decision
            state.last_decision = decision
            demands_cpu[name] = decision.desired_containers * state.deployment.cpu
            state.arrivals_this_epoch = 0

        total_cpu = self.cluster.total_cpu
        overloaded = sum(demands_cpu.values()) > total_cpu + 1e-9

        if overloaded:
            targets = self.scheduling_tree.allocate(demands_cpu, total_cpu)
            self._apply_overload_plan(targets, decisions)
        else:
            # during the post-fault grace window only voluntary scale-downs
            # are withheld; scale-ups and inflation proceed normally
            allow_scale_down = now >= self._suppress_reclamation_until
            self._apply_normal_scaling(decisions, allow_scale_down=allow_scale_down)

        # any queued work that can start on the (possibly changed) container
        # set should start now rather than wait for the next completion
        self._drain_all_queues()

        snapshot = self._snapshot(now, overloaded, decisions)
        self.metrics.record_epoch(snapshot)
        return snapshot

    def _drain_all_queues(self) -> None:
        """Push queued requests onto any containers that can now take them."""
        for name in self._functions:
            if self.dispatcher.queue_length(name):
                self.dispatcher.drain(name)

    # -- model-driven decision per function ----------------------------
    def _scaling_query(self, name: str, state: _FunctionState, now: float) -> ScalingQuery:
        """Rate estimation (stateful) + model inputs for one function.

        The returned query carries everything the autoscaler needs; the
        actual queueing-model solves happen in one batched call per
        epoch (:meth:`Autoscaler.decide_batch`).
        """
        observation = state.rate_estimator.estimate(now)
        if observation.burst_detected:
            self.metrics.increment("burst_switches")
        smoothed = state.ewma.update(observation.rate)

        service_rate = self._service_rate(state, cpu_fraction=1.0)
        current = self.cluster.containers_of(name, include_draining=False)
        existing_rates = [service_rate * c.speed for c in current]
        heterogeneous = current and any(c.cpu_fraction < 1.0 - 1e-9 for c in current)

        service_percentile = None
        if self.config.subtract_service_percentile:
            service_percentile = self._service_time_percentile(state)

        return ScalingQuery(
            function_name=name,
            arrival_rate=smoothed,
            service_rate=service_rate,
            slo_deadline=state.deployment.slo_deadline or 1.0,
            current_containers=len(current),
            existing_service_rates=existing_rates if heterogeneous else None,
            service_time_percentile=service_percentile,
            min_containers=state.deployment.min_containers,
        )

    def _decide(self, name: str, state: _FunctionState, now: float) -> ScalingDecision:
        """One function's scaling decision (batch-of-one convenience)."""
        return self.autoscaler.decide_batch((self._scaling_query(name, state, now),))[0]

    def _service_rate(self, state: _FunctionState, cpu_fraction: float) -> float:
        """Best current estimate of the per-container service rate at a CPU fraction."""
        if self.config.online_learning:
            learned = state.online_service.service_rate(cpu_fraction)
            if learned is not None and state.online_service.observations(cpu_fraction) >= 20:
                return learned
        if state.profile is not None:
            return state.profile.service_rate(cpu_fraction)
        return state.default_service_rate

    def _service_time_percentile(self, state: _FunctionState) -> Optional[float]:
        """Service-time percentile used to tighten the wait budget, if known."""
        if state.profile is not None:
            return state.profile.percentile(self.config.percentile)
        if self.config.online_learning:
            return state.online_service.percentile(self.config.percentile)
        return None

    # -- no-pressure path (§3.3) ----------------------------------------
    def _apply_normal_scaling(self, decisions: Dict[str, ScalingDecision],
                              allow_scale_down: bool = True) -> None:
        # Scale down first (lazily), so freed capacity is visible to scale-ups.
        """Apply the epoch's decisions when the cluster is not overloaded.

        ``allow_scale_down=False`` (the post-fault grace window) skips
        the lazy termination marks but still inflates and scales up.
        """
        for name, decision in decisions.items():
            if decision.scale_down:
                if not allow_scale_down:
                    self.metrics.increment("reclamations_suppressed")
                    continue
                self._scale_down(name, -decision.delta)
        for name, decision in decisions.items():
            live = self.cluster.containers_of(name, include_draining=False)
            # re-inflate any deflated containers: there is no pressure
            for container in live:
                if container.cpu_fraction < 1.0 - 1e-9:
                    gained = self.cluster.inflate_container(container.container_id)
                    if gained > 0:
                        self.metrics.increment("inflations")
            needed = decision.desired_containers - len(live)
            if needed > 0:
                self._scale_up(name, needed)

    def _scale_down(self, name: str, count: int) -> None:
        """Lazily mark ``count`` of a function's containers for termination."""
        live = self.cluster.containers_of(name, include_draining=False)
        victims = sorted(live, key=lambda c: (c.current_cpu, c.container_id))[:count]
        for container in victims:
            if self.config.lazy_termination:
                container.mark_draining()
                self.metrics.increment("lazy_marks")
            else:
                self._terminate(container.container_id)

    def _scale_up(self, name: str, count: int) -> None:
        """Give a function ``count`` more containers: rescue draining ones, then create."""
        state = self._state(name)
        # 1) rescue draining containers of this function first (cheapest)
        draining = [
            c for c in self.cluster.containers_of(name)
            if c.state == ContainerState.DRAINING
        ]
        for container in draining:
            if count <= 0:
                break
            container.unmark_draining()
            self.metrics.increment("lazy_rescues")
            count -= 1
        if count <= 0:
            return
        # 2) create new containers; if placement fails, reclaim draining
        #    containers of other functions and retry.
        created = self._create_containers(name, count)
        remaining = count - created
        if remaining > 0:
            self._reclaim_draining(exclude=name)
            self._create_containers(name, remaining)

    def _create_containers(self, name: str, count: int) -> int:
        """Place and create up to ``count`` containers; returns how many succeeded."""
        state = self._state(name)
        dep = state.deployment
        requests = [PlacementRequest(name, dep.cpu, dep.memory_mb) for _ in range(count)]
        plan = plan_placements(self.cluster.nodes, requests, self.config.placement_strategy)
        created = 0
        for request, node_name in plan.placements:
            self.invokers[node_name].create_container(name)
            self.metrics.increment("creations")
            created += 1
        return created

    def _reclaim_draining(self, exclude: Optional[str] = None) -> None:
        """Terminate draining containers to free capacity for other functions."""
        for container in self.cluster.all_containers():
            if container.state != ContainerState.DRAINING:
                continue
            if exclude is not None and container.function_name == exclude:
                continue
            self._terminate(container.container_id)

    # -- overload path (§4) ----------------------------------------------
    def _apply_overload_plan(
        self, targets_cpu: Dict[str, float], decisions: Dict[str, ScalingDecision]
    ) -> None:
        # Under pressure there is no room for lazy termination: draining
        # containers are real capacity that must be reclaimed immediately.
        """Enforce the fair-share CPU targets through the reclamation policy."""
        self._reclaim_draining()

        containers_by_function = {
            name: self.cluster.containers_of(name, include_draining=False)
            for name in self._functions
        }
        standard_cpu = {name: st.deployment.cpu for name, st in self._functions.items()}
        policy = self._reclamation_policy()
        plan = policy.plan(
            containers_by_function=containers_by_function,
            target_cpu=targets_cpu,
            standard_cpu=standard_cpu,
            free_cpu=self.cluster.cpu_free,
        )
        self._execute_plan(plan)

    def _reclamation_policy(self):
        """The policy object for the configured reclamation mechanism."""
        if self.config.reclamation is ReclamationPolicy.TERMINATION:
            return TerminationPolicy()
        return DeflationPolicy(
            threshold=self.config.deflation_threshold,
            increment=self.config.deflation_increment,
        )

    def _execute_plan(self, plan: ReclamationPlan) -> None:
        """Execute a plan's terminate, deflate, inflate, and create actions."""
        for action in plan.terminations:
            self._terminate(action.container_id)
        for action in plan.deflations:
            invoker = self.invokers.invoker_for_container(action.container_id)
            if invoker is not None:
                invoker.resize_container(action.container_id, action.cpu)
                self.metrics.increment("deflations")
        for action in plan.inflations:
            container = self.cluster.get_container(action.container_id)
            if container is None:
                continue
            node = self.cluster.node(container.node_name)
            if node is None:
                continue
            target = min(action.cpu, container.current_cpu + node.cpu_free)
            if target > container.current_cpu + 1e-9:
                invoker = self.invokers.invoker_for_container(action.container_id)
                if invoker is not None:
                    invoker.resize_container(action.container_id, target)
                    self.metrics.increment("inflations")
        for action in plan.creations:
            dep = self._state(action.function_name).deployment
            requests = [PlacementRequest(action.function_name, action.cpu, dep.memory_mb)]
            placed = plan_placements(self.cluster.nodes, requests, self.config.placement_strategy)
            for request, node_name in placed.placements:
                self.invokers[node_name].create_container(action.function_name, cpu=action.cpu)
                self.metrics.increment("creations")

    # -- fault path (driven by repro.faults.injector) --------------------
    def on_node_failed(self, node_name: str, salvaged: List[Request]) -> None:
        """React to a node failure: requeue survivors, replace lost capacity.

        Called by the fault injector *after* the cluster evicted the
        node's containers.  ``salvaged`` are the still-``QUEUED``
        requests rescued from the evicted containers' FCFS queues; they
        rejoin the head of their functions' shared queues (they arrived
        earlier than anything queued there).  The controller then starts
        a recovery pass immediately — the paper's reactive loop, not the
        epoch cadence — and opens a grace window during which voluntary
        reclamation is suppressed.
        """
        self.dispatcher.requeue(salvaged)
        self._suppress_reclamation_until = (
            self.engine.now + self.config.fault_recovery_grace
        )
        self._replace_lost_capacity()

    def on_node_recovered(self, node_name: str) -> None:
        """React to a node recovery: capacity is back, rebalance onto it.

        Containers the failed node hosted are gone for good (state is
        not preserved across an outage); what returns is *room*.  The
        reactive pass below re-creates any containers the last sizing
        pass wanted but could not place, and the grace window is
        refreshed so the epoch loop does not immediately reclaim the
        replacements created during the outage.
        """
        self._suppress_reclamation_until = (
            self.engine.now + self.config.fault_recovery_grace
        )
        self._replace_lost_capacity()

    def on_container_crashed(self, container: Container,
                             salvaged: List[Request]) -> None:
        """React to a single-container crash (crash-on-dispatch faults)."""
        self.dispatcher.requeue(salvaged)
        self._replace_lost_capacity()

    def _replace_lost_capacity(self) -> None:
        """Reactive recovery pass: scale every function back towards its target.

        For each function the target is the last epoch's desired count
        (or at least one container when work is queued and none exist).
        Creation failures are tolerated — on a shrunken fleet some
        replacements simply will not fit until the node recovers; the
        next epoch's fair-share pass arbitrates the remaining capacity.
        """
        for name, state in self._functions.items():
            desired = 0
            if state.last_decision is not None:
                desired = state.last_decision.desired_containers
            if desired < 1 and self.dispatcher.queue_length(name):
                desired = 1
            live = self.cluster.containers_of(name, include_draining=False)
            if desired > len(live):
                self._scale_up(name, desired - len(live))
        self._drain_all_queues()

    def _terminate(self, container_id: str) -> None:
        """Terminate one container by id (immediately, not lazily)."""
        container = self.cluster.get_container(container_id)
        if container is None:
            return
        invoker = self.invokers.invoker_for_container(container_id)
        if invoker is not None:
            dropped = invoker.terminate_container(container_id)
        else:
            dropped = self.cluster.terminate_container(container_id)
        self.metrics.increment("terminations")
        self.metrics.record_drop(len(dropped))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _state(self, name: str) -> _FunctionState:
        """Per-function controller state, with a descriptive ``KeyError``."""
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} is not registered with the controller") from None

    def last_decision(self, name: str) -> Optional[ScalingDecision]:
        """The most recent scaling decision for a function."""
        return self._state(name).last_decision

    def guaranteed_cpu_shares(self) -> Dict[str, float]:
        """Per-function guaranteed CPU shares implied by the scheduling tree."""
        return self.scheduling_tree.guaranteed_shares(self.cluster.total_cpu)

    def _snapshot(
        self, now: float, overloaded: bool, decisions: Dict[str, ScalingDecision]
    ) -> EpochSnapshot:
        """Build the epoch snapshot recorded into the metrics timeline."""
        functions: Dict[str, FunctionEpochStats] = {}
        for name, state in self._functions.items():
            live = self.cluster.containers_of(name, include_draining=False)
            decision = decisions.get(name)
            functions[name] = FunctionEpochStats(
                function_name=name,
                containers=len(live),
                cpu=sum(c.current_cpu for c in live),
                desired_containers=decision.desired_containers if decision else len(live),
                arrival_rate_estimate=decision.arrival_rate if decision else 0.0,
                service_rate_estimate=decision.service_rate if decision else 0.0,
            )
        return EpochSnapshot(
            time=now,
            overloaded=overloaded,
            total_cpu=self.cluster.total_cpu,
            allocated_cpu=self.cluster.cpu_allocated,
            functions=functions,
        )


__all__ = ["LassController", "ControllerConfig", "ReclamationPolicy"]
