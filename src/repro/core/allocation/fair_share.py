"""Weighted fair-share allocation under overload (paper §4.1).

Each function ``i`` has a weight ``ω_i`` and a model-derived demand
``c_new_i``.  When the aggregate demand exceeds the cluster capacity
``C``:

* its guaranteed minimum share is ``c_guar_i = ⌊ω_i / Σ_j ω_j · C⌋``;
* functions whose demand is at most their guaranteed share ("well
  behaved") receive their full demand;
* the remaining capacity ``Ĉ = C − Σ_k c_new_k`` (sum over well-behaved
  functions) is divided among the overloaded functions in proportion to
  their weights: ``c_adj_i = ⌊ω_i / Σ_m ω_m · Ĉ⌋``.

Lemma 1: if every function is overloaded each gets exactly its
guaranteed share.  Lemma 2: an overloaded function never receives less
than its guaranteed share.  Both are exercised directly by the test
suite (including property-based tests).

Two entry points are provided:

* :func:`fair_share_allocation` — the paper's single-pass algorithm, in
  either discrete (container-count) or continuous (CPU) units.
* :func:`progressive_filling` — an iterative water-filling variant that
  additionally redistributes capacity an overloaded function cannot use
  (demand below its proportional slice of ``Ĉ``); used by the
  hierarchical scheduler and available for ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional


@dataclass(frozen=True)
class FairShareResult:
    """Outcome of a fair-share computation.

    Attributes
    ----------
    allocations:
        Adjusted allocation ``c_adj_i`` per function.
    guaranteed:
        Guaranteed minimum share ``c_guar_i`` per function.
    overloaded:
        Names of the functions whose demand exceeded their guaranteed share.
    well_behaved:
        Names of the functions whose demand was within their guaranteed share.
    capacity:
        The total capacity that was divided.
    is_overloaded:
        Whether aggregate demand exceeded capacity (if not, allocations
        simply equal demands).
    """

    allocations: Dict[str, float]
    guaranteed: Dict[str, float]
    overloaded: tuple
    well_behaved: tuple
    capacity: float
    is_overloaded: bool

    def total_allocated(self) -> float:
        """Sum of all adjusted allocations."""
        return sum(self.allocations.values())


def _validate(demands: Mapping[str, float], weights: Mapping[str, float], capacity: float) -> None:
    """Validate demands, weights, and capacity before the water-filling pass."""
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if not demands:
        raise ValueError("at least one function is required")
    for name, demand in demands.items():
        if demand < 0:
            raise ValueError(f"demand for {name!r} must be non-negative")
        if name not in weights:
            raise ValueError(f"missing weight for function {name!r}")
        if weights[name] <= 0:
            raise ValueError(f"weight for {name!r} must be positive")


def guaranteed_shares(
    weights: Mapping[str, float], capacity: float, discrete: bool = True
) -> Dict[str, float]:
    """Guaranteed minimum share per function: ``⌊ω_i/Σω · C⌋`` (paper Eq. 7)."""
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    shares: Dict[str, float] = {}
    for name, weight in weights.items():
        if weight <= 0:
            raise ValueError(f"weight for {name!r} must be positive")
        share = weight / total_weight * capacity
        shares[name] = float(math.floor(share + 1e-9)) if discrete else share
    return shares


def fair_share_allocation(
    demands: Mapping[str, float],
    weights: Mapping[str, float],
    capacity: float,
    discrete: bool = True,
) -> FairShareResult:
    """The paper's fair-share algorithm (§4.1).

    Parameters
    ----------
    demands:
        Model-derived desired allocation ``c_new_i`` per function, in
        containers (``discrete=True``) or CPU units (``discrete=False``).
    weights:
        Fair-share weight ``ω_i`` per function.
    capacity:
        Total cluster capacity ``C`` in the same units as the demands.
    discrete:
        Apply the paper's floors (container counts) or keep fractional
        allocations (CPU units).
    """
    _validate(demands, weights, capacity)
    guaranteed = guaranteed_shares({n: weights[n] for n in demands}, capacity, discrete=discrete)
    total_demand = sum(demands.values())

    if total_demand <= capacity + 1e-9:
        allocations = {name: float(demand) for name, demand in demands.items()}
        return FairShareResult(
            allocations=allocations,
            guaranteed=guaranteed,
            overloaded=tuple(),
            well_behaved=tuple(sorted(demands)),
            capacity=float(capacity),
            is_overloaded=False,
        )

    well_behaved = tuple(sorted(n for n in demands if demands[n] <= guaranteed[n] + 1e-9))
    overloaded = tuple(sorted(n for n in demands if n not in well_behaved))

    allocations: Dict[str, float] = {}
    for name in well_behaved:
        allocations[name] = float(demands[name])

    remaining = capacity - sum(allocations.values())
    remaining = max(0.0, remaining)
    overload_weight = sum(weights[n] for n in overloaded)
    for name in overloaded:
        share = weights[name] / overload_weight * remaining if overload_weight > 0 else 0.0
        allocations[name] = float(math.floor(share + 1e-9)) if discrete else share

    return FairShareResult(
        allocations=allocations,
        guaranteed=guaranteed,
        overloaded=overloaded,
        well_behaved=well_behaved,
        capacity=float(capacity),
        is_overloaded=True,
    )


def progressive_filling(
    demands: Mapping[str, float],
    weights: Mapping[str, float],
    capacity: float,
    discrete: bool = False,
    max_rounds: int = 64,
) -> FairShareResult:
    """Iterative weighted water-filling.

    Like :func:`fair_share_allocation`, but when an overloaded function's
    proportional slice of the leftover capacity exceeds its demand, the
    surplus is redistributed to the remaining overloaded functions in
    further rounds.  The result therefore never allocates more than a
    function's demand and wastes no capacity while any demand is unmet.
    The guarantees of Lemmas 1 and 2 continue to hold because every
    function's allocation is monotonically non-decreasing across rounds
    and starts at the single-pass value capped by its own demand.
    """
    _validate(demands, weights, capacity)
    guaranteed = guaranteed_shares({n: weights[n] for n in demands}, capacity, discrete=discrete)
    total_demand = sum(demands.values())
    if total_demand <= capacity + 1e-9:
        allocations = {name: float(demand) for name, demand in demands.items()}
        return FairShareResult(
            allocations=allocations,
            guaranteed=guaranteed,
            overloaded=tuple(),
            well_behaved=tuple(sorted(demands)),
            capacity=float(capacity),
            is_overloaded=False,
        )

    allocations = {name: 0.0 for name in demands}
    unsatisfied = {name for name in demands if demands[name] > 0}
    remaining = float(capacity)
    rounds = 0
    while unsatisfied and remaining > 1e-12 and rounds < max_rounds:
        rounds += 1
        round_weight = sum(weights[n] for n in unsatisfied)
        satisfied_this_round = set()
        consumed = 0.0
        for name in sorted(unsatisfied):
            slice_ = weights[name] / round_weight * remaining
            need = demands[name] - allocations[name]
            grant = min(slice_, need)
            allocations[name] += grant
            consumed += grant
            if allocations[name] >= demands[name] - 1e-12:
                satisfied_this_round.add(name)
        remaining -= consumed
        unsatisfied -= satisfied_this_round
        if not satisfied_this_round:
            break

    if discrete:
        allocations = {name: float(math.floor(v + 1e-9)) for name, v in allocations.items()}

    well_behaved = tuple(sorted(n for n in demands if demands[n] <= guaranteed[n] + 1e-9))
    overloaded = tuple(sorted(n for n in demands if n not in well_behaved))
    return FairShareResult(
        allocations=allocations,
        guaranteed=guaranteed,
        overloaded=overloaded,
        well_behaved=well_behaved,
        capacity=float(capacity),
        is_overloaded=True,
    )


def is_overloaded(demands: Mapping[str, float], capacity: float) -> bool:
    """The paper's overload condition: aggregate demand exceeds capacity."""
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    return sum(demands.values()) > capacity + 1e-9


__all__ = [
    "FairShareResult",
    "guaranteed_shares",
    "fair_share_allocation",
    "progressive_filling",
    "is_overloaded",
]
