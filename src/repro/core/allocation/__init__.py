"""Resource allocation: model-driven autoscaling, fair share, reclamation.

* :mod:`repro.core.allocation.fair_share` — the weighted fair-share
  allocation of §4.1 (guaranteed shares, well-behaved vs. overloaded
  functions, Lemmas 1 and 2), in both discrete container units and
  continuous CPU units.
* :mod:`repro.core.allocation.hierarchy` — the two-level user → function
  scheduling tree from the prototype (§5), generalised to arbitrary
  depth.
* :mod:`repro.core.allocation.reclamation` — the termination and
  deflation reclamation policies of §4.2, expressed as pure planners
  that turn (current containers, target allocations) into an action
  list.
* :mod:`repro.core.allocation.placement` — node selection for new
  containers.
* :mod:`repro.core.allocation.autoscaler` — the per-function desired
  allocation computation of §3.3 combining the rate estimate, the
  service-time knowledge, and the queueing models.
"""

from repro.core.allocation.fair_share import (
    FairShareResult,
    fair_share_allocation,
    guaranteed_shares,
    progressive_filling,
)
from repro.core.allocation.hierarchy import SchedulingNode, SchedulingTree
from repro.core.allocation.reclamation import (
    CreateAction,
    DeflateAction,
    DeflationPolicy,
    InflateAction,
    ReclamationPlan,
    TerminateAction,
    TerminationPolicy,
)
from repro.core.allocation.placement import best_fit, first_fit, plan_placements, worst_fit
from repro.core.allocation.autoscaler import Autoscaler, ScalingDecision

__all__ = [
    "FairShareResult",
    "fair_share_allocation",
    "guaranteed_shares",
    "progressive_filling",
    "SchedulingNode",
    "SchedulingTree",
    "ReclamationPlan",
    "TerminationPolicy",
    "DeflationPolicy",
    "TerminateAction",
    "DeflateAction",
    "InflateAction",
    "CreateAction",
    "worst_fit",
    "best_fit",
    "first_fit",
    "plan_placements",
    "Autoscaler",
    "ScalingDecision",
]
