"""Container placement onto worker nodes.

The paper's control node "first finds a cluster node with enough spare
capacity or finds a number of nodes that can collectively host
``c_new − c_current`` new containers" (§3.3).  This module provides the
usual bin-packing heuristics plus a planner that maps a batch of new
containers onto nodes.  The controller's default is best-fit (pack
small containers tightly so whole nodes stay free for the large DNN
containers); worst-fit and first-fit are provided for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.node import Node


@dataclass(frozen=True)
class PlacementRequest:
    """One container that needs a node."""

    function_name: str
    cpu: float
    memory_mb: float

    def __post_init__(self) -> None:
        """Validate the requested container size."""
        if self.cpu <= 0 or self.memory_mb <= 0:
            raise ValueError("placement request sizes must be positive")


@dataclass
class PlacementPlan:
    """Result of planning a batch of placements."""

    #: (request, node name) for every request that found a home
    placements: List[Tuple[PlacementRequest, str]]
    #: requests that could not be placed anywhere
    unplaced: List[PlacementRequest]

    @property
    def fully_placed(self) -> bool:
        """Whether every requested container found a node."""
        return not self.unplaced


def _feasible(nodes: Iterable[Node], request: PlacementRequest,
              reserved: Dict[str, Tuple[float, float]]) -> List[Node]:
    """Nodes that still fit the request after the plan's prior reservations."""
    feasible = []
    for node in nodes:
        if not node.available:
            continue
        reserved_cpu, reserved_mem = reserved.get(node.name, (0.0, 0.0))
        if (node.cpu_free - reserved_cpu >= request.cpu - 1e-9 and
                node.memory_free_mb - reserved_mem >= request.memory_mb - 1e-9):
            feasible.append(node)
    return feasible


def worst_fit(nodes: Sequence[Node], request: PlacementRequest,
              reserved: Optional[Dict[str, Tuple[float, float]]] = None) -> Optional[Node]:
    """The feasible node with the most remaining CPU (spreads load)."""
    reserved = reserved or {}
    feasible = _feasible(nodes, request, reserved)
    if not feasible:
        return None
    def free_cpu(node: Node) -> float:
        """Free CPU on a node net of in-plan reservations."""
        return node.cpu_free - reserved.get(node.name, (0.0, 0.0))[0]
    return max(feasible, key=lambda n: (free_cpu(n), n.memory_free_mb, n.name))


def best_fit(nodes: Sequence[Node], request: PlacementRequest,
             reserved: Optional[Dict[str, Tuple[float, float]]] = None) -> Optional[Node]:
    """The feasible node with the least remaining CPU (packs tightly)."""
    reserved = reserved or {}
    feasible = _feasible(nodes, request, reserved)
    if not feasible:
        return None
    def free_cpu(node: Node) -> float:
        """Free CPU on a node net of in-plan reservations."""
        return node.cpu_free - reserved.get(node.name, (0.0, 0.0))[0]
    return min(feasible, key=lambda n: (free_cpu(n), n.memory_free_mb, n.name))


def first_fit(nodes: Sequence[Node], request: PlacementRequest,
              reserved: Optional[Dict[str, Tuple[float, float]]] = None) -> Optional[Node]:
    """The first feasible node in the given order."""
    reserved = reserved or {}
    feasible = _feasible(nodes, request, reserved)
    return feasible[0] if feasible else None


_STRATEGIES = {
    "worst_fit": worst_fit,
    "best_fit": best_fit,
    "first_fit": first_fit,
}


def plan_placements(
    nodes: Sequence[Node],
    requests: Sequence[PlacementRequest],
    strategy: str = "worst_fit",
) -> PlacementPlan:
    """Map a batch of new containers onto nodes without mutating the nodes.

    The planner tracks its own reservations so that several containers
    planned in one epoch do not all land on the node that was emptiest at
    the start of the epoch.  Larger containers are placed first, which is
    the classic decreasing-size heuristic for better packing.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown placement strategy {strategy!r}; choose from {sorted(_STRATEGIES)}")
    chooser = _STRATEGIES[strategy]
    reserved: Dict[str, Tuple[float, float]] = {}
    placements: List[Tuple[PlacementRequest, str]] = []
    unplaced: List[PlacementRequest] = []
    ordered = sorted(requests, key=lambda r: (r.cpu, r.memory_mb), reverse=True)
    for request in ordered:
        node = chooser(nodes, request, reserved)
        if node is None:
            unplaced.append(request)
            continue
        cpu_reserved, mem_reserved = reserved.get(node.name, (0.0, 0.0))
        reserved[node.name] = (cpu_reserved + request.cpu, mem_reserved + request.memory_mb)
        placements.append((request, node.name))
    return PlacementPlan(placements=placements, unplaced=unplaced)


__all__ = [
    "PlacementRequest",
    "PlacementPlan",
    "worst_fit",
    "best_fit",
    "first_fit",
    "plan_placements",
]
