"""Per-function desired allocation: the model-driven autoscaler (paper §3.3).

The autoscaler answers one question per function per epoch: given the
estimated arrival rate, what the controller knows about the service
time, and the SLO, how many containers should this function have?  It
chooses automatically between the homogeneous model (all containers at
standard size) and the heterogeneous Alves et al. model (some
containers deflated), exactly as the paper prescribes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.queueing.sizing import (
    SizingResult,
    required_containers,
    required_containers_fast,
    required_containers_heterogeneous,
    wait_budget_from_slo,
)


@dataclass(frozen=True)
class ScalingDecision:
    """The autoscaler's verdict for one function in one epoch.

    Attributes
    ----------
    function_name:
        The function this decision concerns.
    desired_containers:
        ``c_new`` — the number of containers the model asks for.
    current_containers:
        The number of containers the function has right now.
    arrival_rate:
        The (smoothed) arrival rate that was fed to the model.
    service_rate:
        The standard-container service rate that was fed to the model.
    wait_budget:
        The waiting-time budget ``t`` used for the percentile bound.
    achieved_probability:
        The model's ``P(wait <= t)`` at the desired allocation.
    used_heterogeneous_model:
        Whether the Alves et al. model was used (some containers deflated).
    """

    function_name: str
    desired_containers: int
    current_containers: int
    arrival_rate: float
    service_rate: float
    wait_budget: float
    achieved_probability: float
    used_heterogeneous_model: bool = False

    @property
    def delta(self) -> int:
        """Positive when the function needs more containers, negative when fewer."""
        return self.desired_containers - self.current_containers

    @property
    def scale_up(self) -> bool:
        """Whether the function is under-provisioned."""
        return self.delta > 0

    @property
    def scale_down(self) -> bool:
        """Whether the function is over-provisioned."""
        return self.delta < 0


class Autoscaler:
    """Computes desired container counts from workload and SLO parameters.

    Parameters
    ----------
    percentile:
        The SLO percentile (paper default: 95 %; model validation also
        uses 99 %).
    use_fast_sizing:
        Use the vectorised/binary-search sizing path.  The reference and
        fast paths return identical counts; the fast one is what makes
        sub-second reaction possible with thousands of containers
        (Figure 5).
    headroom_containers:
        Extra containers added on top of the model's answer (0 in the
        paper; exposed for ablations).
    subtract_service_percentile:
        If true, the waiting-time budget is ``d − s_p`` (the paper's
        conservative rule).  If false the full deadline is used as the
        waiting budget, matching experiments whose SLO is defined on
        waiting time only.
    """

    def __init__(
        self,
        percentile: float = 0.95,
        use_fast_sizing: bool = True,
        headroom_containers: int = 0,
        subtract_service_percentile: bool = False,
        max_containers: int = 100_000,
    ) -> None:
        """Configure the SLO percentile and which sizing implementations to use."""
        if not 0 < percentile < 1:
            raise ValueError("percentile must be in (0, 1)")
        if headroom_containers < 0:
            raise ValueError("headroom_containers must be non-negative")
        self.percentile = float(percentile)
        self.use_fast_sizing = bool(use_fast_sizing)
        self.headroom_containers = int(headroom_containers)
        self.subtract_service_percentile = bool(subtract_service_percentile)
        self.max_containers = int(max_containers)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def wait_budget(
        self,
        slo_deadline: float,
        service_rate: float,
        service_time_percentile: Optional[float] = None,
    ) -> float:
        """The waiting-time budget ``t`` for a function."""
        if self.subtract_service_percentile:
            return wait_budget_from_slo(
                slo_deadline, service_rate, self.percentile, service_time_percentile
            )
        return wait_budget_from_slo(slo_deadline, service_rate, self.percentile, 0.0)

    def desired_containers(
        self,
        function_name: str,
        arrival_rate: float,
        service_rate: float,
        slo_deadline: float,
        current_containers: int = 0,
        existing_service_rates: Optional[Sequence[float]] = None,
        service_time_percentile: Optional[float] = None,
        min_containers: int = 0,
    ) -> ScalingDecision:
        """Compute ``c_new`` for one function.

        Parameters
        ----------
        arrival_rate:
            Estimated (smoothed) arrival rate λ for the next epoch.
        service_rate:
            Service rate μ of a *standard* container.
        slo_deadline:
            The SLO deadline ``d`` in seconds.
        current_containers:
            Containers currently allocated (Algorithm 1 starts here).
        existing_service_rates:
            If given and heterogeneous (containers deflated to different
            speeds), the Alves et al. sizing path is used and the answer
            is the *total* container count needed assuming existing
            containers stay as they are and additions are standard size.
        service_time_percentile:
            High-percentile service time; defaults to the exponential
            percentile at ``self.percentile``.
        min_containers:
            A floor on the answer (e.g. keep-warm minimum).
        """
        if arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if service_rate <= 0:
            raise ValueError("service rate must be positive")
        budget = self.wait_budget(slo_deadline, service_rate, service_time_percentile)

        if arrival_rate <= 0:
            desired = max(min_containers, 0)
            return ScalingDecision(
                function_name=function_name,
                desired_containers=desired,
                current_containers=current_containers,
                arrival_rate=0.0,
                service_rate=service_rate,
                wait_budget=budget,
                achieved_probability=1.0,
            )

        heterogeneous = (
            existing_service_rates is not None
            and len(existing_service_rates) > 0
            and (max(existing_service_rates) - min(existing_service_rates) > 1e-9
                 or any(abs(m - service_rate) > 1e-9 for m in existing_service_rates))
        )
        if heterogeneous:
            result = required_containers_heterogeneous(
                lam=arrival_rate,
                existing_mus=list(existing_service_rates),
                standard_mu=service_rate,
                wait_budget=budget,
                percentile=self.percentile,
                max_additional=self.max_containers,
            )
        elif self.use_fast_sizing:
            result = required_containers_fast(
                lam=arrival_rate,
                mu=service_rate,
                wait_budget=budget,
                percentile=self.percentile,
                current_containers=0,
                max_containers=self.max_containers,
            )
        else:
            result = required_containers(
                lam=arrival_rate,
                mu=service_rate,
                wait_budget=budget,
                percentile=self.percentile,
                current_containers=0,
                max_containers=self.max_containers,
            )

        desired = max(result.containers + self.headroom_containers, min_containers)
        return ScalingDecision(
            function_name=function_name,
            desired_containers=desired,
            current_containers=current_containers,
            arrival_rate=arrival_rate,
            service_rate=service_rate,
            wait_budget=budget,
            achieved_probability=result.achieved_probability,
            used_heterogeneous_model=heterogeneous,
        )

    def minimum_stable_containers(self, arrival_rate: float, service_rate: float) -> int:
        """The smallest container count for which the queue is stable (ρ < 1)."""
        if service_rate <= 0:
            raise ValueError("service rate must be positive")
        if arrival_rate <= 0:
            return 0
        return int(math.floor(arrival_rate / service_rate)) + 1


__all__ = ["Autoscaler", "ScalingDecision"]
