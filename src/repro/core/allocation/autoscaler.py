"""Per-function desired allocation: the model-driven autoscaler (paper §3.3).

The autoscaler answers one question per function per epoch: given the
estimated arrival rate, what the controller knows about the service
time, and the SLO, how many containers should this function have?  It
chooses automatically between the homogeneous model (all containers at
standard size) and the heterogeneous Alves et al. model (some
containers deflated), exactly as the paper prescribes.

All model evaluations route through a
:class:`repro.core.queueing.solver.SizingSolver` — the memoized,
warm-started, candidate-vectorised control-plane fast path — unless
``use_fast_sizing=False`` pins the reference Algorithm 1 for ablations.
The controller sizes every registered function per epoch through
:meth:`Autoscaler.decide_batch`, which folds all warm-start probes into
a single kernel call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.queueing.sizing import (
    SizingResult,
    required_containers,
    required_containers_heterogeneous,
    wait_budget_from_slo,
)
from repro.core.queueing.solver import SizingQuery, SizingSolver, default_solver


@dataclass(frozen=True)
class ScalingQuery:
    """One function's inputs to the epoch sizing decision.

    Attributes
    ----------
    function_name:
        The function to size (also the solver's warm-start key).
    arrival_rate:
        Estimated (smoothed) arrival rate λ for the next epoch.
    service_rate:
        Service rate μ of a *standard* container.
    slo_deadline:
        The SLO deadline ``d`` in seconds.
    current_containers:
        Containers currently allocated (reported back on the decision).
    existing_service_rates:
        Per-container service rates when the fleet is heterogeneous
        (some containers deflated); ``None`` for the homogeneous model.
    service_time_percentile:
        High-percentile service time used to tighten the wait budget.
    min_containers:
        A floor on the answer (e.g. keep-warm minimum).
    """

    function_name: str
    arrival_rate: float
    service_rate: float
    slo_deadline: float
    current_containers: int = 0
    existing_service_rates: Optional[Sequence[float]] = None
    service_time_percentile: Optional[float] = None
    min_containers: int = 0


@dataclass(frozen=True)
class ScalingDecision:
    """The autoscaler's verdict for one function in one epoch.

    Attributes
    ----------
    function_name:
        The function this decision concerns.
    desired_containers:
        ``c_new`` — the number of containers the model asks for.
    current_containers:
        The number of containers the function has right now.
    arrival_rate:
        The (smoothed) arrival rate that was fed to the model.
    service_rate:
        The standard-container service rate that was fed to the model.
    wait_budget:
        The waiting-time budget ``t`` used for the percentile bound.
    achieved_probability:
        The model's ``P(wait <= t)`` at the desired allocation.
    used_heterogeneous_model:
        Whether the Alves et al. model was used (some containers deflated).
    """

    function_name: str
    desired_containers: int
    current_containers: int
    arrival_rate: float
    service_rate: float
    wait_budget: float
    achieved_probability: float
    used_heterogeneous_model: bool = False

    @property
    def delta(self) -> int:
        """Positive when the function needs more containers, negative when fewer."""
        return self.desired_containers - self.current_containers

    @property
    def scale_up(self) -> bool:
        """Whether the function is under-provisioned."""
        return self.delta > 0

    @property
    def scale_down(self) -> bool:
        """Whether the function is over-provisioned."""
        return self.delta < 0


class Autoscaler:
    """Computes desired container counts from workload and SLO parameters.

    Parameters
    ----------
    percentile:
        The SLO percentile (paper default: 95 %; model validation also
        uses 99 %).
    use_fast_sizing:
        Route sizing (homogeneous and heterogeneous alike) through the
        memoized solver; ``False`` pins the stateless reference
        implementations for ablations.  Both return identical counts;
        the solver is what makes sub-second reaction possible with
        thousands of containers (Figure 5) and thousands of functions
        per epoch.
    headroom_containers:
        Extra containers added on top of the model's answer (0 in the
        paper; exposed for ablations).
    subtract_service_percentile:
        If true, the waiting-time budget is ``d − s_p`` (the paper's
        conservative rule).  If false the full deadline is used as the
        waiting budget, matching experiments whose SLO is defined on
        waiting time only.
    solver:
        The :class:`SizingSolver` (or interface-compatible object) used
        for model evaluations; defaults to the process-wide shared
        instance.  Benchmarks inject frozen baselines here.
    """

    def __init__(
        self,
        percentile: float = 0.95,
        use_fast_sizing: bool = True,
        headroom_containers: int = 0,
        subtract_service_percentile: bool = False,
        max_containers: int = 100_000,
        solver: Optional[SizingSolver] = None,
    ) -> None:
        """Configure the SLO percentile and which sizing implementations to use."""
        if not 0 < percentile < 1:
            raise ValueError("percentile must be in (0, 1)")
        if headroom_containers < 0:
            raise ValueError("headroom_containers must be non-negative")
        self.percentile = float(percentile)
        self.use_fast_sizing = bool(use_fast_sizing)
        self.headroom_containers = int(headroom_containers)
        self.subtract_service_percentile = bool(subtract_service_percentile)
        self.max_containers = int(max_containers)
        self.solver = solver if solver is not None else default_solver()

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def wait_budget(
        self,
        slo_deadline: float,
        service_rate: float,
        service_time_percentile: Optional[float] = None,
    ) -> float:
        """The waiting-time budget ``t`` for a function."""
        if self.subtract_service_percentile:
            return wait_budget_from_slo(
                slo_deadline, service_rate, self.percentile, service_time_percentile
            )
        return wait_budget_from_slo(slo_deadline, service_rate, self.percentile, 0.0)

    def desired_containers(
        self,
        function_name: str,
        arrival_rate: float,
        service_rate: float,
        slo_deadline: float,
        current_containers: int = 0,
        existing_service_rates: Optional[Sequence[float]] = None,
        service_time_percentile: Optional[float] = None,
        min_containers: int = 0,
    ) -> ScalingDecision:
        """Compute ``c_new`` for one function (see :class:`ScalingQuery`)."""
        query = ScalingQuery(
            function_name=function_name,
            arrival_rate=arrival_rate,
            service_rate=service_rate,
            slo_deadline=slo_deadline,
            current_containers=current_containers,
            existing_service_rates=existing_service_rates,
            service_time_percentile=service_time_percentile,
            min_containers=min_containers,
        )
        return self.decide_batch((query,))[0]

    def decide_batch(self, queries: Sequence[ScalingQuery]) -> List[ScalingDecision]:
        """Size every function of an epoch in one call.

        Zero-rate and heterogeneous (deflated-fleet) queries resolve
        individually; every homogeneous query is handed to the solver's
        batched entry point, which folds all their warm-start probes
        into a single vectorised kernel evaluation.  Decisions are
        positionally aligned with ``queries``.
        """
        decisions: List[Optional[ScalingDecision]] = [None] * len(queries)
        budgets: List[float] = [0.0] * len(queries)
        solver_queries: List[SizingQuery] = []
        solver_slots: List[int] = []

        for i, q in enumerate(queries):
            if q.arrival_rate < 0:
                raise ValueError("arrival rate must be non-negative")
            if q.service_rate <= 0:
                raise ValueError("service rate must be positive")
            budget = self.wait_budget(q.slo_deadline, q.service_rate,
                                      q.service_time_percentile)
            budgets[i] = budget

            if q.arrival_rate <= 0:
                desired = max(q.min_containers, 0)
                decisions[i] = ScalingDecision(
                    function_name=q.function_name,
                    desired_containers=desired,
                    current_containers=q.current_containers,
                    arrival_rate=0.0,
                    service_rate=q.service_rate,
                    wait_budget=budget,
                    achieved_probability=1.0,
                )
                continue

            if self._is_heterogeneous(q):
                if self.use_fast_sizing:
                    result = self.solver.solve_heterogeneous(
                        lam=q.arrival_rate,
                        existing_mus=list(q.existing_service_rates or ()),
                        standard_mu=q.service_rate,
                        wait_budget=budget,
                        percentile=self.percentile,
                        max_additional=self.max_containers,
                        key=(q.function_name, "heterogeneous"),
                    )
                else:
                    result = required_containers_heterogeneous(
                        lam=q.arrival_rate,
                        existing_mus=list(q.existing_service_rates or ()),
                        standard_mu=q.service_rate,
                        wait_budget=budget,
                        percentile=self.percentile,
                        max_additional=self.max_containers,
                    )
                decisions[i] = self._decision(q, budget, result, heterogeneous=True)
            elif self.use_fast_sizing:
                solver_queries.append(SizingQuery(
                    lam=float(q.arrival_rate),
                    mu=float(q.service_rate),
                    wait_budget=float(budget),
                    percentile=self.percentile,
                    current_containers=0,
                    max_containers=self.max_containers,
                    key=q.function_name,
                ))
                solver_slots.append(i)
            else:
                result = required_containers(
                    lam=q.arrival_rate,
                    mu=q.service_rate,
                    wait_budget=budget,
                    percentile=self.percentile,
                    current_containers=0,
                    max_containers=self.max_containers,
                )
                decisions[i] = self._decision(q, budget, result, heterogeneous=False)

        if solver_queries:
            results = self.solver.solve_batch(solver_queries)
            for slot, result in zip(solver_slots, results):
                decisions[slot] = self._decision(
                    queries[slot], budgets[slot], result, heterogeneous=False
                )
        return decisions  # type: ignore[return-value]

    @staticmethod
    def _is_heterogeneous(query: ScalingQuery) -> bool:
        """Whether the query's existing fleet requires the Alves et al. model."""
        rates = query.existing_service_rates
        return (
            rates is not None
            and len(rates) > 0
            and (max(rates) - min(rates) > 1e-9
                 or any(abs(m - query.service_rate) > 1e-9 for m in rates))
        )

    def _decision(self, query: ScalingQuery, budget: float, result: SizingResult,
                  heterogeneous: bool) -> ScalingDecision:
        """Wrap a sizing result in a :class:`ScalingDecision` (headroom + floor)."""
        desired = max(result.containers + self.headroom_containers,
                      query.min_containers)
        return ScalingDecision(
            function_name=query.function_name,
            desired_containers=desired,
            current_containers=query.current_containers,
            arrival_rate=query.arrival_rate,
            service_rate=query.service_rate,
            wait_budget=budget,
            achieved_probability=result.achieved_probability,
            used_heterogeneous_model=heterogeneous,
        )

    def minimum_stable_containers(self, arrival_rate: float, service_rate: float) -> int:
        """The smallest container count for which the queue is stable (ρ < 1)."""
        if service_rate <= 0:
            raise ValueError("service rate must be positive")
        if arrival_rate <= 0:
            return 0
        return int(math.floor(arrival_rate / service_rate)) + 1


__all__ = ["Autoscaler", "ScalingDecision", "ScalingQuery"]
