"""Resource reclamation policies: termination and deflation (paper §4.2).

Both policies are *planners*: pure functions from (the containers each
function currently has, the adjusted CPU allocation each function
should have) to an ordered list of actions — terminate, deflate,
inflate, create — that the controller then executes through the
invokers.  Keeping them pure makes the two policies directly comparable
in tests and ablation benchmarks.

Termination policy
    Over-allocated functions lose whole containers (smallest current CPU
    first) until they are within their adjusted allocation; freed
    capacity is used to create standard-size containers for
    under-allocated functions.  Because only whole standard containers
    are created, a fragment of capacity smaller than a standard
    container is left unused — the fragmentation the paper measures as a
    ~6 % utilisation loss.

Deflation policy
    Over-allocated functions keep their container *count* but all their
    containers are deflated in small increments, up to a threshold
    ``τ`` of the standard size, until enough CPU has been reclaimed; if
    the threshold is reached first, the remainder is reclaimed by
    terminating containers.  Under-allocated functions first re-inflate
    any deflated containers, then receive new containers — possibly
    deflated ones, so leftover fragments of capacity are still usable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Protocol, Sequence


class ContainerLike(Protocol):
    """The minimal container interface the planners need."""

    container_id: str
    function_name: str
    current_cpu: float
    standard_cpu: float


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TerminateAction:
    """Terminate a container immediately and reclaim its resources."""

    function_name: str
    container_id: str


@dataclass(frozen=True)
class DeflateAction:
    """Resize a container in place down to ``cpu`` vCPUs."""

    function_name: str
    container_id: str
    cpu: float


@dataclass(frozen=True)
class InflateAction:
    """Resize a container in place up to ``cpu`` vCPUs (at most its standard size)."""

    function_name: str
    container_id: str
    cpu: float


@dataclass(frozen=True)
class CreateAction:
    """Create a new container with the given CPU allocation."""

    function_name: str
    cpu: float


Action = object  # union of the four dataclasses above


@dataclass
class ReclamationPlan:
    """An ordered action list plus bookkeeping for tests and metrics."""

    terminations: List[TerminateAction] = field(default_factory=list)
    deflations: List[DeflateAction] = field(default_factory=list)
    inflations: List[InflateAction] = field(default_factory=list)
    creations: List[CreateAction] = field(default_factory=list)

    @property
    def actions(self) -> List[Action]:
        """All actions in execution order: reclaim first, then give back."""
        return [*self.deflations, *self.terminations, *self.inflations, *self.creations]

    @property
    def cpu_reclaimed(self) -> float:
        """CPU freed by terminations and deflations (requires planner to fill deltas)."""
        return self._cpu_reclaimed

    _cpu_reclaimed: float = 0.0

    def is_empty(self) -> bool:
        """Whether the plan contains no actions at all."""
        return not (self.terminations or self.deflations or self.inflations or self.creations)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _total_cpu(containers: Sequence[ContainerLike]) -> float:
    """Sum of the containers' current CPU allocations."""
    return sum(c.current_cpu for c in containers)


def _sorted_smallest_first(containers: Sequence[ContainerLike]) -> List[ContainerLike]:
    """Containers ordered smallest current CPU first (id as tie-break)."""
    return sorted(containers, key=lambda c: (c.current_cpu, c.container_id))


# ----------------------------------------------------------------------
# Termination policy
# ----------------------------------------------------------------------
class TerminationPolicy:
    """Reclaim by terminating whole containers (paper §4.2, policy 1)."""

    name = "termination"

    def plan(
        self,
        containers_by_function: Mapping[str, Sequence[ContainerLike]],
        target_cpu: Mapping[str, float],
        standard_cpu: Mapping[str, float],
        free_cpu: float = 0.0,
    ) -> ReclamationPlan:
        """Build the action plan.

        Parameters
        ----------
        containers_by_function:
            Current live containers of every function.
        target_cpu:
            Adjusted CPU allocation per function (``c_adj_i`` converted to
            CPU units by the controller).
        standard_cpu:
            Standard container CPU size per function.
        free_cpu:
            CPU currently unallocated in the cluster (usable for creations
            before any reclamation happens).
        """
        plan = ReclamationPlan()
        reclaimed = 0.0

        # Phase 1: reclaim from over-allocated functions.
        for name, containers in containers_by_function.items():
            target = float(target_cpu.get(name, _total_cpu(containers)))
            std = float(standard_cpu.get(name, containers[0].standard_cpu if containers else 1.0))
            target_count = int(math.floor(target / std + 1e-9)) if std > 0 else 0
            live = list(containers)
            # under the termination policy deflated containers are restored
            # to standard size whenever the node-level budget allows; plan
            # inflations only when the function is not shrinking.
            if len(live) > target_count:
                victims = _sorted_smallest_first(live)[: len(live) - target_count]
                for victim in victims:
                    plan.terminations.append(TerminateAction(name, victim.container_id))
                    reclaimed += victim.current_cpu
            else:
                for container in live:
                    if container.current_cpu < container.standard_cpu - 1e-9:
                        plan.inflations.append(
                            InflateAction(name, container.container_id, container.standard_cpu)
                        )

        # Phase 2: give capacity to under-allocated functions, whole
        # standard containers only.
        available = free_cpu + reclaimed
        for name, containers in sorted(containers_by_function.items()):
            target = float(target_cpu.get(name, 0.0))
            std = float(standard_cpu.get(name, containers[0].standard_cpu if containers else 1.0))
            if std <= 0:
                continue
            surviving = [
                c for c in containers
                if c.container_id not in {t.container_id for t in plan.terminations}
            ]
            current = _total_cpu(surviving)
            target_count = int(math.floor(target / std + 1e-9))
            missing = target_count - len(surviving)
            for _ in range(max(0, missing)):
                if available + 1e-9 < std:
                    break
                plan.creations.append(CreateAction(name, std))
                available -= std
                current += std

        plan._cpu_reclaimed = reclaimed
        return plan


# ----------------------------------------------------------------------
# Deflation policy
# ----------------------------------------------------------------------
class DeflationPolicy:
    """Reclaim by deflating containers in place (paper §4.2, policy 2).

    Parameters
    ----------
    threshold:
        Maximum fraction ``τ`` of a container's standard CPU that may be
        reclaimed by deflation (the paper sets this conservatively to 30 %).
    increment:
        Deflation step size, as a fraction of the standard CPU, applied to
        every container of an over-allocated function per iteration.
    allow_deflated_creation:
        Whether new containers for under-allocated functions may be created
        already deflated (down to ``1 − τ`` of standard size) so that
        capacity fragments smaller than a standard container are still
        usable.  This is what removes the unused-capacity slivers visible
        under the termination policy in Figures 8 and 9.
    """

    name = "deflation"

    def __init__(
        self,
        threshold: float = 0.3,
        increment: float = 0.05,
        allow_deflated_creation: bool = True,
    ) -> None:
        """Configure the deflation threshold and per-step increment."""
        if not 0 < threshold < 1:
            raise ValueError("threshold must be in (0, 1)")
        if not 0 < increment <= threshold:
            raise ValueError("increment must be in (0, threshold]")
        self.threshold = float(threshold)
        self.increment = float(increment)
        self.allow_deflated_creation = bool(allow_deflated_creation)

    def plan(
        self,
        containers_by_function: Mapping[str, Sequence[ContainerLike]],
        target_cpu: Mapping[str, float],
        standard_cpu: Mapping[str, float],
        free_cpu: float = 0.0,
    ) -> ReclamationPlan:
        """Build the action plan (same signature as :class:`TerminationPolicy`)."""
        plan = ReclamationPlan()
        reclaimed = 0.0

        # Phase 1: reclaim from over-allocated functions by deflation.
        #
        # Conceptually this follows the paper's iterative procedure
        # (repeatedly shave `increment` off every container until the
        # aggregate matches the target, then terminate if the threshold is
        # hit first); the implementation jumps straight to that procedure's
        # fixed point: keep as many containers as can each stay at or above
        # ``(1 − τ)`` of their standard size while summing to the target,
        # terminate the rest, and set the survivors' levels so the
        # aggregate equals the target exactly.
        for name, containers in containers_by_function.items():
            live = list(containers)
            if not live:
                continue
            target = float(target_cpu.get(name, _total_cpu(live)))
            total = _total_cpu(live)
            if total <= target + 1e-9:
                continue

            min_level_fraction = 1.0 - self.threshold
            ordered = _sorted_smallest_first(live)
            # largest containers are the most valuable survivors (they can
            # absorb the most deflation); terminate from the smallest end.
            survivors: List[ContainerLike] = list(ordered)
            victims: List[ContainerLike] = []
            while survivors:
                min_total = sum(c.standard_cpu * min_level_fraction for c in survivors)
                if min_total <= target + 1e-9:
                    break
                victims.append(survivors.pop(0))

            victim_ids = {v.container_id for v in victims}
            for victim in victims:
                plan.terminations.append(TerminateAction(name, victim.container_id))
                reclaimed += victim.current_cpu

            if survivors:
                # distribute the target over the survivors in proportion to
                # their standard sizes, capped at the standard size
                standard_total = sum(c.standard_cpu for c in survivors)
                budget = min(target, standard_total)
                for c in survivors:
                    share = c.standard_cpu / standard_total * budget
                    new_level = min(c.standard_cpu, max(c.standard_cpu * min_level_fraction, share))
                    if new_level < c.current_cpu - 1e-9:
                        plan.deflations.append(DeflateAction(name, c.container_id, new_level))
                        reclaimed += c.current_cpu - new_level
                    elif new_level > c.current_cpu + 1e-9:
                        plan.inflations.append(InflateAction(name, c.container_id, new_level))
                        reclaimed -= new_level - c.current_cpu

        # Phase 2: give capacity to under-allocated functions.
        available = free_cpu + reclaimed
        for name, containers in sorted(containers_by_function.items()):
            live = [
                c for c in containers
                if c.container_id not in {t.container_id for t in plan.terminations}
            ]
            target = float(target_cpu.get(name, 0.0))
            std = float(standard_cpu.get(name, live[0].standard_cpu if live else 1.0))
            current = _total_cpu(live)
            deficit = target - current
            if deficit <= 1e-9:
                continue

            # 2a: re-inflate this function's own deflated containers first
            for c in _sorted_smallest_first(live):
                if deficit <= 1e-9 or available <= 1e-9:
                    break
                headroom = c.standard_cpu - c.current_cpu
                if headroom <= 1e-9:
                    continue
                grant = min(headroom, deficit, available)
                plan.inflations.append(InflateAction(name, c.container_id, c.current_cpu + grant))
                deficit -= grant
                available -= grant

            # 2b: create new containers, standard size while the deficit allows
            if std > 0:
                while deficit >= std - 1e-9 and available >= std - 1e-9:
                    plan.creations.append(CreateAction(name, std))
                    deficit -= std
                    available -= std
                # 2c: one final deflated container to use the remaining fragment
                min_size = std * (1.0 - self.threshold)
                if (
                    self.allow_deflated_creation
                    and deficit >= min_size - 1e-9
                    and available >= min_size - 1e-9
                ):
                    size = min(std, deficit, available)
                    plan.creations.append(CreateAction(name, size))
                    deficit -= size
                    available -= size

        plan._cpu_reclaimed = reclaimed
        return plan


__all__ = [
    "ContainerLike",
    "TerminateAction",
    "DeflateAction",
    "InflateAction",
    "CreateAction",
    "ReclamationPlan",
    "TerminationPolicy",
    "DeflationPolicy",
]
