"""Hierarchical scheduling tree (paper §5).

"For function scheduling, we implemented a two level hierarchical
scheduling tree by adding the notion of weight to user (namespace) and
actions.  LaSS uses these weights to calculate the fair [share] of
resources for each action.  Our model can be extended to a hierarchical
scheduling tree with arbitrary levels."

The tree's leaves are functions; internal nodes are users (namespaces)
or arbitrary grouping levels.  Fair-share capacity flows top-down: at
every internal node the available capacity is divided among the
children with the same demand-aware weighted algorithm used for flat
fair share (:func:`repro.core.allocation.fair_share.progressive_filling`),
where a child's demand is the total demand of its subtree.  Capacity a
subtree cannot use is therefore available to its siblings, exactly as in
the flat case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.allocation.fair_share import progressive_filling


@dataclass
class SchedulingNode:
    """A node in the scheduling tree.

    Leaves carry function names; internal nodes carry children.
    """

    name: str
    weight: float = 1.0
    children: List["SchedulingNode"] = field(default_factory=list)

    def __post_init__(self) -> None:
        """Validate the node's weight."""
        if self.weight <= 0:
            raise ValueError(f"node {self.name!r}: weight must be positive")

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a function (no children)."""
        return not self.children

    def add_child(self, child: "SchedulingNode") -> "SchedulingNode":
        """Attach a child node and return it (for chaining)."""
        if any(c.name == child.name for c in self.children):
            raise ValueError(f"duplicate child name {child.name!r} under {self.name!r}")
        self.children.append(child)
        return child

    def leaves(self) -> List["SchedulingNode"]:
        """All leaf nodes in this subtree, in depth-first order."""
        if self.is_leaf:
            return [self]
        result: List[SchedulingNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def find(self, name: str) -> Optional["SchedulingNode"]:
        """Depth-first search for a node by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class SchedulingTree:
    """A weighted fair-share hierarchy over functions.

    Examples
    --------
    The evaluation's §6.7 setup — two users, user 2 with twice the weight
    of user 1, three functions each::

        tree = SchedulingTree()
        u1 = tree.add_user("user-1", weight=1.0)
        u2 = tree.add_user("user-2", weight=2.0)
        tree.add_function("geofence", user="user-1")
        ...
    """

    def __init__(self, root_name: str = "cluster") -> None:
        """Create a tree containing only the root node."""
        self.root = SchedulingNode(root_name, weight=1.0)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_user(self, name: str, weight: float = 1.0) -> SchedulingNode:
        """Add a user (namespace) directly under the root."""
        return self.root.add_child(SchedulingNode(name, weight=weight))

    def add_function(self, name: str, user: Optional[str] = None, weight: float = 1.0) -> SchedulingNode:
        """Add a function leaf under ``user`` (or directly under the root)."""
        parent = self.root if user is None else self.root.find(user)
        if parent is None:
            raise KeyError(f"unknown user {user!r}")
        if parent.is_leaf and parent is not self.root:
            pass  # a user with no functions yet is fine
        return parent.add_child(SchedulingNode(name, weight=weight))

    @classmethod
    def flat(cls, weights: Mapping[str, float]) -> "SchedulingTree":
        """A single-level tree: every function directly under the root."""
        tree = cls()
        for name, weight in weights.items():
            tree.add_function(name, weight=weight)
        return tree

    @classmethod
    def two_level(cls, users: Mapping[str, float], functions: Mapping[str, str],
                  function_weights: Optional[Mapping[str, float]] = None) -> "SchedulingTree":
        """Build the paper's two-level tree.

        Parameters
        ----------
        users:
            user name → user weight.
        functions:
            function name → owning user.
        function_weights:
            optional per-function weights within their user (default 1).
        """
        tree = cls()
        for user, weight in users.items():
            tree.add_user(user, weight=weight)
        for fn, user in functions.items():
            weight = 1.0 if function_weights is None else function_weights.get(fn, 1.0)
            tree.add_function(fn, user=user, weight=weight)
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def function_names(self) -> List[str]:
        """All function (leaf) names."""
        return [leaf.name for leaf in self.root.leaves()]

    def effective_weights(self) -> Dict[str, float]:
        """Flattened per-function weights: the product of normalised weights
        down the path from the root.

        These are the weights to use if a flat fair-share computation must
        approximate the hierarchical one (e.g. for the guaranteed shares
        reported to users).
        """
        result: Dict[str, float] = {}

        def descend(node: SchedulingNode, multiplier: float) -> None:
            """Recursive helper: accumulate each leaf's product of level weights."""
            if node.is_leaf and node is not self.root:
                result[node.name] = multiplier
                return
            total = sum(child.weight for child in node.children)
            for child in node.children:
                descend(child, multiplier * child.weight / total)

        descend(self.root, 1.0)
        return result

    def guaranteed_shares(self, capacity: float) -> Dict[str, float]:
        """Per-function guaranteed minimum shares of ``capacity``."""
        weights = self.effective_weights()
        return {name: weight * capacity for name, weight in weights.items()}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, demands: Mapping[str, float], capacity: float) -> Dict[str, float]:
        """Hierarchical demand-aware weighted fair allocation.

        ``demands`` maps function names to their desired allocation (CPU
        units).  The returned allocations never exceed the demands and sum
        to at most ``capacity``.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        known = set(self.function_names())
        unknown = set(demands) - known
        if unknown:
            raise KeyError(f"demands for functions not in the tree: {sorted(unknown)}")
        allocations: Dict[str, float] = {}
        self._allocate_node(self.root, demands, capacity, allocations)
        return allocations

    def _subtree_demand(self, node: SchedulingNode, demands: Mapping[str, float]) -> float:
        """Total demand of all leaves under ``node``."""
        if node.is_leaf and node is not self.root:
            return float(demands.get(node.name, 0.0))
        return sum(self._subtree_demand(child, demands) for child in node.children)

    def _allocate_node(
        self,
        node: SchedulingNode,
        demands: Mapping[str, float],
        capacity: float,
        out: Dict[str, float],
    ) -> None:
        """Recursively water-fill a node's capacity over its children."""
        if node.is_leaf and node is not self.root:
            out[node.name] = min(capacity, float(demands.get(node.name, 0.0)))
            return
        if not node.children:
            return
        child_demands = {
            child.name: self._subtree_demand(child, demands) for child in node.children
        }
        child_weights = {child.name: child.weight for child in node.children}
        if sum(child_demands.values()) == 0:
            for child in node.children:
                self._allocate_node(child, demands, 0.0, out)
            return
        result = progressive_filling(child_demands, child_weights, capacity, discrete=False)
        for child in node.children:
            self._allocate_node(child, demands, result.allocations[child.name], out)


__all__ = ["SchedulingNode", "SchedulingTree"]
