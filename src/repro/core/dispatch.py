"""Shared per-function request queue + idle-container dispatch.

OpenWhisk's controller tracks how many activations are in flight on
every container and only forwards a new invocation to a container with
a free slot; excess invocations wait in the controller (Kafka) until a
slot frees up.  The effect is a *shared FCFS queue per function* in
front of the function's containers — which is exactly the M/M/c system
the paper's sizing model assumes (each container is a "queueing
server").

:class:`SharedQueueDispatcher` reproduces that data path for the
simulator: requests go to an idle container immediately when one
exists (chosen by weighted round robin, so larger/faster containers
take proportionally more of the load when sizes are heterogeneous) and
otherwise wait in the function's queue; whenever a container finishes a
request or a new container warms up, the queue is drained.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.cluster.container import Container
from repro.cluster.loadbalancer import WeightedRoundRobinBalancer
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request, RequestStatus


class SharedQueueDispatcher:
    """Per-function shared FCFS queues in front of idle-container dispatch.

    Parameters
    ----------
    engine:
        The simulation engine requests execute on.
    on_complete:
        Optional callback invoked with ``(request, container)`` after each
        completion (after the dispatcher's own bookkeeping).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        on_complete: Optional[Callable[[Request, Container], None]] = None,
    ) -> None:
        self.engine = engine
        self.balancer = WeightedRoundRobinBalancer()
        self._queues: Dict[str, Deque[Request]] = {}
        self._on_complete = on_complete

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------
    def queue_length(self, function_name: str) -> int:
        """Requests currently waiting in the function's shared queue."""
        return len(self._queues.get(function_name, ()))

    def queued_requests(self, function_name: str) -> List[Request]:
        """The waiting requests of a function (a copy, FCFS order)."""
        return list(self._queues.get(function_name, ()))

    def total_queued(self) -> int:
        """Waiting requests across all functions."""
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit(self, request: Request, containers: Sequence[Container]) -> bool:
        """Dispatch a new request.

        Returns ``True`` if it started on an idle container immediately,
        ``False`` if it was queued.
        """
        idle = [c for c in containers if c.is_available and c.is_idle]
        chosen = self.balancer.pick(request.function_name, idle) if idle else None
        if chosen is None:
            queue = self._queues.setdefault(request.function_name, deque())
            request.mark_queued()
            queue.append(request)
            return False
        chosen.submit(request, self.engine, self._completion_hook)
        return True

    def drain(self, function_name: str, containers: Sequence[Container]) -> int:
        """Move as many queued requests as possible onto idle containers.

        Returns the number of requests that started executing.
        """
        queue = self._queues.get(function_name)
        if not queue:
            return 0
        started = 0
        idle = [c for c in containers if c.is_available and c.is_idle]
        while queue and idle:
            request = queue.popleft()
            if request.status is not RequestStatus.QUEUED:
                continue  # dropped while waiting (e.g. container terminated it)
            chosen = self.balancer.pick(function_name, idle)
            if chosen is None:  # pragma: no cover - idle is non-empty
                queue.appendleft(request)
                break
            chosen.submit(request, self.engine, self._completion_hook)
            idle = [c for c in idle if c.is_idle]
            started += 1
        return started

    def requeue(self, requests: Sequence[Request]) -> None:
        """Put dropped-but-unstarted requests back at the head of their queues.

        Used when a container is terminated while holding queued work that
        should be retried elsewhere.
        """
        for request in reversed(list(requests)):
            if request.status is not RequestStatus.QUEUED:
                continue
            self._queues.setdefault(request.function_name, deque()).appendleft(request)

    def _completion_hook(self, request: Request, container: Container) -> None:
        if self._on_complete is not None:
            self._on_complete(request, container)
        # the container just went idle: pull the next queued request onto it
        queue = self._queues.get(request.function_name)
        while queue and container.is_available and container.is_idle:
            next_request = queue.popleft()
            if next_request.status is not RequestStatus.QUEUED:
                continue
            container.submit(next_request, self.engine, self._completion_hook)


__all__ = ["SharedQueueDispatcher"]
