"""Shared per-function request queue + idle-container dispatch.

OpenWhisk's controller tracks how many activations are in flight on
every container and only forwards a new invocation to a container with
a free slot; excess invocations wait in the controller (Kafka) until a
slot frees up.  The effect is a *shared FCFS queue per function* in
front of the function's containers — which is exactly the M/M/c system
the paper's sizing model assumes (each container is a "queueing
server").

:class:`SharedQueueDispatcher` reproduces that data path for the
simulator: requests go to an idle container immediately when one
exists (chosen by weighted round robin, so larger/faster containers
take proportionally more of the load when sizes are heterogeneous) and
otherwise wait in the function's queue; whenever a container finishes a
request or a new container warms up, the queue is drained.

Fast path
---------
When the dispatcher is attached to a cluster
(:meth:`SharedQueueDispatcher.attach_cluster`), it maintains
**per-function idle sets incrementally**: containers enter the set when
they warm up or finish a request with an empty queue, and leave it when
they receive work, start draining, or terminate (driven by the
cluster's container state hooks).  ``submit``/``drain`` then take the
candidate set straight from the index — the seed implementation instead
rebuilt the idle list with two full cluster scans per dispatched
request.  Entries are validated lazily at pick time, so code that
bypasses the dispatcher (tests submitting to containers directly) can
never corrupt a dispatch, only leave a stale entry to be discarded.

The explicit ``containers=[...]`` calling convention of the seed API is
still supported for callers that manage their own container lists
(unit tests and ad-hoc harnesses; every built-in control-plane policy
now attaches to the cluster and uses the incremental index).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.cluster.container import Container
from repro.cluster.loadbalancer import WeightedRoundRobinBalancer
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request, RequestStatus


def _idle_sort_key(container: Container):
    """Dispatch preference: smallest current CPU first (id as tie-break)."""
    return (container.current_cpu, container.container_id)


class SharedQueueDispatcher:
    """Per-function shared FCFS queues in front of idle-container dispatch.

    Parameters
    ----------
    engine:
        The simulation engine requests execute on.
    on_complete:
        Optional callback invoked with ``(request, container)`` after each
        completion (after the dispatcher's own bookkeeping).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        on_complete: Optional[Callable[[Request, Container], None]] = None,
    ) -> None:
        """Create an empty dispatcher and bind the completion callback."""
        self.engine = engine
        self.balancer = WeightedRoundRobinBalancer()
        self._queues: Dict[str, Deque[Request]] = {}
        self._on_complete = on_complete
        #: Optional fault hook consulted at the single dispatch choke
        #: point (:meth:`_dispatch_to`).  Returning ``False`` means the
        #: container crashed on dispatch: the interceptor has already
        #: disposed of the request and evicted the container, and the
        #: dispatcher must not submit.  ``None`` (the default) keeps the
        #: healthy hot path branch-predictable and byte-exact.
        self.interceptor: Optional[Callable[[Request, Container], bool]] = None
        # function name -> container id -> container (insertion-ordered)
        self._idle: Dict[str, Dict[str, Container]] = {}
        #: True once container state notifications are wired up; without
        #: them the idle index must stay empty — an unattached dispatcher
        #: would insert containers on completion but never learn about
        #: their termination, pinning dead containers forever
        self._attached = False

    # ------------------------------------------------------------------
    # Incremental idle tracking
    # ------------------------------------------------------------------
    def attach_cluster(self, cluster) -> None:
        """Maintain idle sets from the cluster's container state changes.

        After attaching, ``submit``/``drain`` may be called without an
        explicit container list.  Containers that already exist are
        indexed immediately.
        """
        self._attached = True
        cluster.on_container_state(self._on_container_state)
        for container in cluster.all_containers():
            self._on_container_state(container)

    def watch_container(self, container: Container) -> None:
        """Track one standalone (cluster-less) container in the idle index.

        For tests and benchmarks that build containers directly; normal
        code paths use :meth:`attach_cluster`.  Refuses containers that
        already have a state observer (e.g. cluster-created ones) —
        overwriting it would silently disconnect the cluster's own
        terminated-container cleanup.
        """
        existing = container.state_observer
        if existing is not None and existing is not self._on_container_state:
            raise ValueError(
                f"container {container.container_id} already has a state observer "
                "(cluster-created containers are tracked via attach_cluster)"
            )
        self._attached = True
        container.state_observer = self._on_container_state
        self._on_container_state(container)

    def _on_container_state(self, container: Container) -> None:
        """Observer hook: keep the per-function idle set in sync."""
        if container.is_dispatchable:
            self._idle.setdefault(container.function_name, {})[container.container_id] = container
        else:
            index = self._idle.get(container.function_name)
            if index is not None:
                index.pop(container.container_id, None)

    def _mark_busy(self, container: Container) -> None:
        """Remove a container from its function's idle set."""
        index = self._idle.get(container.function_name)
        if index is not None:
            index.pop(container.container_id, None)

    def _mark_idle_if_free(self, container: Container) -> None:
        """Re-add a container to the idle set if it can take more work."""
        if not self._attached:
            return
        if container.is_dispatchable:
            self._idle.setdefault(container.function_name, {})[container.container_id] = container
        else:
            self._mark_busy(container)

    def _idle_candidates(self, function_name: str) -> List[Container]:
        """Validated idle containers of a function, in the seed's sort order."""
        index = self._idle.get(function_name)
        if not index:
            return []
        if len(index) == 1:  # the common steady-state case: skip the sort
            (cid, container), = index.items()
            if container.is_dispatchable:
                return [container]
            del index[cid]
            return []
        stale = [
            cid for cid, c in index.items() if not (c.is_dispatchable)
        ]
        for cid in stale:
            del index[cid]
        if not index:
            return []
        return sorted(index.values(), key=_idle_sort_key)

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------
    def queue_length(self, function_name: str) -> int:
        """Requests currently waiting in the function's shared queue."""
        return len(self._queues.get(function_name, ()))

    def queued_requests(self, function_name: str) -> List[Request]:
        """The waiting requests of a function (a copy, FCFS order)."""
        return list(self._queues.get(function_name, ()))

    def total_queued(self) -> int:
        """Waiting requests across all functions."""
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_to(self, container: Container, request: Request) -> bool:
        """Hand one request to one container — the single dispatch choke point.

        Every path that moves a request onto a container (fresh submits,
        queue drains, completion-driven pulls) goes through here, so the
        fault injector's crash-on-dispatch interceptor sees *every*
        dispatch exactly once.  Returns ``False`` when the interceptor
        reports a crash (the request is already disposed of); ``True``
        when the request was submitted.
        """
        interceptor = self.interceptor
        if interceptor is not None and not interceptor(request, container):
            return False
        self._mark_busy(container)
        container.submit(request, self.engine, self._completion_hook)
        return True

    def submit(self, request: Request, containers: Optional[Sequence[Container]] = None) -> bool:
        """Dispatch a new request.

        With ``containers=None`` the incremental idle index is used
        (requires :meth:`attach_cluster`); passing an explicit container
        list preserves the seed behaviour of filtering it on the spot.

        Returns ``True`` if the request started on an idle container
        immediately, ``False`` if it was queued — or if the chosen
        container crashed on dispatch (fault injection), in which case
        the request was failed, not queued.
        """
        if containers is None:
            idle = self._idle_candidates(request.function_name)
        else:
            idle = [c for c in containers if c.is_dispatchable]
        chosen = self.balancer.pick(request.function_name, idle) if idle else None
        if chosen is None:
            queue = self._queues.get(request.function_name)
            if queue is None:
                queue = self._queues[request.function_name] = deque()
            request.mark_queued()
            queue.append(request)
            return False
        return self._dispatch_to(chosen, request)

    def drain(self, function_name: str, containers: Optional[Sequence[Container]] = None) -> int:
        """Move as many queued requests as possible onto idle containers.

        Returns the number of requests that started executing.
        """
        queue = self._queues.get(function_name)
        if not queue:
            return 0
        if containers is None:
            idle = self._idle_candidates(function_name)
        else:
            idle = [c for c in containers if c.is_dispatchable]
        started = 0
        while queue and idle:
            request = queue.popleft()
            if request.status is not RequestStatus.QUEUED:
                continue  # dropped while waiting (e.g. container terminated it)
            chosen = self.balancer.pick(function_name, idle)
            if chosen is None:  # pragma: no cover - idle is non-empty
                queue.appendleft(request)
                break
            if not self._dispatch_to(chosen, request):
                # crashed on dispatch: the request is gone, the container too
                idle = [c for c in idle if c.is_dispatchable]
                continue
            idle = [c for c in idle if c.is_idle]
            started += 1
        return started

    def requeue(self, requests: Sequence[Request]) -> None:
        """Put dropped-but-unstarted requests back at the head of their queues.

        Used when a container is terminated while holding queued work that
        should be retried elsewhere.
        """
        for request in reversed(list(requests)):
            if request.status is not RequestStatus.QUEUED:
                continue
            self._queues.setdefault(request.function_name, deque()).appendleft(request)

    def _completion_hook(self, request: Request, container: Container) -> None:
        """Completion callback: notify the owner, then reuse the freed container."""
        if self._on_complete is not None:
            self._on_complete(request, container)
        # the container just went idle: pull the next queued request onto it
        queue = self._queues.get(request.function_name)
        while queue and container.is_dispatchable:
            next_request = queue.popleft()
            if next_request.status is not RequestStatus.QUEUED:
                continue
            self._dispatch_to(container, next_request)
        self._mark_idle_if_free(container)


__all__ = ["SharedQueueDispatcher"]
