"""The control-plane policy abstraction: every controller is a pluggable policy.

The paper's evaluation is *comparative* — LaSS's model-driven allocation
against vanilla OpenWhisk, static allocation, and reactive autoscaling —
so the reproduction treats every control plane as an interchangeable
:class:`ControlPolicy`.  A policy owns the controller lifecycle contract
(data path, control loop, fault hooks) and is constructed by a factory
registered under a short name (``"lass"``, ``"openwhisk"``,
``"reactive"``, ``"static"``, ``"hybrid"``, ``"noop"``); the
:class:`~repro.simulation.SimulationRunner` builds whichever policy a
scenario names, which is what lets any policy run under any workload,
cluster, fault schedule, and sweep.

The lifecycle contract
----------------------
``start()``
    Begin the policy's periodic loops (epoch ticks, snapshot ticks).
    Called once by the runner after prewarming, before the workload.
``dispatch(request)``
    The data path: handle one arriving invocation (route it to a
    container or queue it).  Every policy must record the request in its
    metrics collector so waiting-time/SLO accounting works uniformly.
``run_epoch()``
    One synchronous control-loop pass (optional; the default is a
    no-op).  Exposed so tests and ablations can step the control plane
    manually.
``on_node_failed(node_name, salvaged)`` / ``on_node_recovered(node_name)``
    / ``on_container_crashed(container, salvaged)``
    The fault hooks driven by :class:`~repro.faults.injector.FaultInjector`.
    ``salvaged`` are still-``QUEUED`` requests rescued from evicted
    containers; the default implementation requeues them at the head of
    the policy's shared-queue dispatcher (policies without one override).
``set_dispatch_interceptor(fn)``
    Install the fault injector's crash-on-dispatch interceptor at the
    policy's dispatch choke point.  The default wires it to
    ``self.dispatcher``; policies with a bespoke data path (vanilla
    OpenWhisk) override, and policies with no choke point at all raise.
``results_extra()``
    Optional ``(group_name, payload)`` contributed to the scenario
    results envelope (the OpenWhisk policy reports its invoker-failure
    cascade this way).  ``None`` (the default) adds nothing, so LaSS
    envelopes are byte-identical to the pre-policy layout.

Registry
--------
Policies register a *factory* with :func:`register_policy`; the factory
receives a :class:`PolicyContext` (the already-wired engine, cluster,
and metrics plus the controller configuration and service-time
knowledge) and the scenario's ``policy_params`` mapping, and returns the
constructed policy.  Built-in policies live in :mod:`repro.policies` and
are imported lazily on first lookup; third-party code registers its own
the same way::

    from repro.core.policy import ControlPolicy, register_policy

    @register_policy("mine", "my experimental scaler")
    def _build(context, params):
        return MyPolicy(context.engine, context.cluster, context.metrics, **params)

and then runs it with ``ScenarioSpec(controller=ControllerSpec(policy="mine"))``.
"""

from __future__ import annotations

import abc
import importlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)


class ControlPolicy(abc.ABC):
    """Base class for every control plane the simulator can run.

    Concrete policies must implement :meth:`start` and :meth:`dispatch`;
    the remaining lifecycle methods have safe defaults documented in the
    module docstring.  Policies that use a
    :class:`~repro.core.dispatch.SharedQueueDispatcher` should store it
    on ``self.dispatcher`` so the default fault hooks and interceptor
    wiring work unchanged.
    """

    #: Registry name of the policy class (informational; the registry's
    #: descriptor name is authoritative).
    name: ClassVar[str] = ""

    #: The policy's shared-queue dispatcher, when it has one.  Used by
    #: the default fault hooks (requeue) and interceptor wiring.
    dispatcher: Optional[Any] = None

    # -- lifecycle -----------------------------------------------------
    @abc.abstractmethod
    def start(self) -> None:
        """Begin the policy's periodic control/snapshot loops."""

    @abc.abstractmethod
    def dispatch(self, request: Any) -> None:
        """Handle one arriving invocation request (the data path)."""

    def run_epoch(self) -> Any:
        """Run one synchronous control-loop pass (default: no-op)."""
        return None

    # -- fault hooks (driven by repro.faults.injector) ------------------
    def on_node_failed(self, node_name: str, salvaged: Sequence[Any]) -> None:
        """React to a node failure; default: requeue the salvaged requests."""
        self._requeue_salvaged(salvaged)

    def on_node_recovered(self, node_name: str) -> None:
        """React to a node recovery; default: nothing (capacity returns as room)."""

    def on_container_crashed(self, container: Any, salvaged: Sequence[Any]) -> None:
        """React to a container crash; default: requeue the salvaged requests."""
        self._requeue_salvaged(salvaged)

    def _requeue_salvaged(self, salvaged: Sequence[Any]) -> None:
        """Put rescued still-queued requests back at the head of the shared queue."""
        if self.dispatcher is not None and salvaged:
            self.dispatcher.requeue(salvaged)

    def set_dispatch_interceptor(
        self, interceptor: Callable[[Any, Any], bool]
    ) -> None:
        """Install a crash-on-dispatch interceptor at the dispatch choke point.

        The interceptor is called with ``(request, container)`` for every
        request handed to a container and returns ``False`` when it
        disposed of the request (container crashed).  Policies without a
        shared-queue dispatcher must override this (or crash faults
        cannot target them).
        """
        if self.dispatcher is None:
            raise ValueError(
                f"policy {type(self).__name__} has no dispatch choke point; "
                "crash-on-dispatch faults are not supported for it"
            )
        self.dispatcher.interceptor = interceptor

    # -- columnar data plane -------------------------------------------
    def columnar_plan(self) -> Optional[Any]:
        """Describe this policy's data path to the columnar kernel, or ``None``.

        A policy whose per-request work fits the
        :class:`~repro.sim.columnar.ColumnarPlan` contract (fold
        arrivals, shared-queue dispatch, create-one-when-empty,
        per-completion observation) returns a plan and the
        ``data_plane="columnar"`` runner executes its requests in the
        vectorized kernel.  The default ``None`` keeps the event-level
        path — correct for any policy with a bespoke data path (e.g.
        the OpenWhisk compatibility policy).
        """
        return None

    # -- results -------------------------------------------------------
    def results_extra(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Optional ``(group_name, payload)`` added to the results envelope."""
        return None


@dataclass
class PolicyContext:
    """Everything a policy factory may need, already wired by the runner.

    Attributes
    ----------
    engine / cluster / metrics:
        The shared simulation engine, the edge cluster, and the run's
        metrics collector.
    config:
        The scenario's :class:`~repro.core.controller.ControllerConfig`.
        LaSS consumes it wholesale; other policies may read the shared
        knobs (e.g. ``percentile``) and take the rest of their
        configuration from ``policy_params``.
    scheduling_tree:
        Optional explicit fair-share hierarchy (LaSS only).
    service_profiles / default_service_rates:
        Offline service-time knowledge per function, for model-driven
        policies.
    """

    engine: Any
    cluster: Any
    metrics: Any
    config: Optional[Any] = None
    scheduling_tree: Optional[Any] = None
    service_profiles: Mapping[str, Any] = field(default_factory=dict)
    default_service_rates: Mapping[str, float] = field(default_factory=dict)


#: A policy factory: ``(context, params) -> ControlPolicy``.
PolicyFactory = Callable[[PolicyContext, Mapping[str, Any]], ControlPolicy]


@dataclass(frozen=True)
class PolicyDescriptor:
    """One registry entry: a named policy factory plus its metadata.

    Attributes
    ----------
    name / summary:
        Registry name and one-line description (shown by the CLI).
    factory:
        Builds the policy from a :class:`PolicyContext` and the
        scenario's ``policy_params``.
    validate_params:
        Optional eager validator called at *spec construction* time, so
        a sweep with a typo'd ``policy_params`` fails before any shard
        runs.  Receives the params mapping; raises ``ValueError``.
    legacy_workload_rng:
        When true, the :class:`~repro.simulation.SimulationRunner` wires
        the workload generators without a dedicated ``work:`` RNG stream
        (work draws interleave with arrival draws) — the wiring the
        historical ``kind="openwhisk"`` harness used, kept so the alias
        stays byte-identical to its pre-policy output.
    """

    name: str
    summary: str
    factory: PolicyFactory
    validate_params: Optional[Callable[[Mapping[str, Any]], None]] = None
    legacy_workload_rng: bool = False


_REGISTRY: Dict[str, PolicyDescriptor] = {}

#: Modules imported lazily on first lookup; importing them registers the
#: built-in policies (lass, openwhisk, reactive, static, hybrid, noop).
_BUILTIN_MODULES: Tuple[str, ...] = ("repro.policies",)
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the built-in policy modules once, registering their factories.

    The loaded flag is only set after every import succeeds, so a failed
    import surfaces its real error on every lookup instead of poisoning
    the registry with a misleading "unknown policy" message.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def register_policy(
    name: str,
    summary: str,
    validate_params: Optional[Callable[[Mapping[str, Any]], None]] = None,
    legacy_workload_rng: bool = False,
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Decorator: register a policy factory under ``name``.

    The decorated callable receives ``(context, params)`` and returns a
    :class:`ControlPolicy`.  Registering the same name twice is an error
    (re-importing a module is not: the identical factory is tolerated).
    """

    def wrap(factory: PolicyFactory) -> PolicyFactory:
        """Store the descriptor in the registry and return the factory."""
        existing = _REGISTRY.get(name)
        if existing is not None and existing.factory is not factory:
            raise ValueError(f"policy {name!r} registered twice")
        _REGISTRY[name] = PolicyDescriptor(
            name=name,
            summary=summary,
            factory=factory,
            validate_params=validate_params,
            legacy_workload_rng=legacy_workload_rng,
        )
        return factory

    return wrap


def get_policy(name: str) -> PolicyDescriptor:
    """Look up a policy descriptor by name (loading built-ins on demand)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {policy_names()}"
        ) from None


def policy_names() -> List[str]:
    """The registered policy names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def describe_policies() -> List[Tuple[str, str]]:
    """``(name, summary)`` rows for every registered policy, sorted."""
    _ensure_builtins()
    return [(d.name, d.summary) for d in sorted(_REGISTRY.values(), key=lambda d: d.name)]


def config_from_params(config_cls: type, policy_name: str,
                       params: Mapping[str, Any]) -> Any:
    """Construct a policy's config dataclass from ``policy_params``.

    Turns the ``TypeError`` an unknown keyword raises into the
    ``ValueError`` the spec-validation layer expects, with a uniform
    message.  Used both by the eager ``validate_params`` hooks and the
    factories themselves.
    """
    try:
        return config_cls(**params)
    except TypeError as error:
        raise ValueError(
            f"invalid {policy_name} policy_params: {error}"
        ) from None


def validate_policy(name: str, params: Mapping[str, Any]) -> None:
    """Validate a policy name + params pair (used at spec construction).

    Raises ``ValueError`` for an unknown name or params the policy's
    eager validator rejects, so bad specs fail before any shard runs.
    """
    try:
        descriptor = get_policy(name)
    except KeyError as error:
        raise ValueError(str(error.args[0])) from None
    if descriptor.validate_params is not None:
        descriptor.validate_params(params)


def build_policy(
    name: str, context: PolicyContext, params: Optional[Mapping[str, Any]] = None
) -> ControlPolicy:
    """Construct the named policy from its registered factory."""
    descriptor = get_policy(name)
    return descriptor.factory(context, dict(params or {}))


__all__ = [
    "ControlPolicy",
    "PolicyContext",
    "PolicyDescriptor",
    "PolicyFactory",
    "build_policy",
    "config_from_params",
    "describe_policies",
    "get_policy",
    "policy_names",
    "register_policy",
    "validate_policy",
]
