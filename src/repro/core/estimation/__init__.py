"""Workload and service-time estimation (paper §3.3 and §5).

* :mod:`repro.core.estimation.ewma` — exponentially weighted moving
  average of per-epoch arrival rates, weighted towards the most recent
  epoch as the paper prescribes.
* :mod:`repro.core.estimation.sliding_window` — the prototype's
  Knative-inspired dual-window estimator: a 2-minute long window and a
  10-second short window sampled every 5 seconds; the short window is
  used whenever it detects a burst (short-window rate at least twice the
  long-window rate).
* :mod:`repro.core.estimation.service_time` — per-function service-time
  knowledge: offline profiles (mean + percentiles per container size)
  and an online streaming estimator that learns them from completed
  requests.
"""

from repro.core.estimation.ewma import EwmaEstimator
from repro.core.estimation.sliding_window import DualWindowRateEstimator, SlidingWindowCounter
from repro.core.estimation.service_time import (
    OnlineServiceTimeEstimator,
    ServiceTimeProfile,
    StreamingQuantile,
)

__all__ = [
    "EwmaEstimator",
    "DualWindowRateEstimator",
    "SlidingWindowCounter",
    "ServiceTimeProfile",
    "OnlineServiceTimeEstimator",
    "StreamingQuantile",
]
