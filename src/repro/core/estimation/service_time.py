"""Service-time knowledge: offline profiles and online learning (paper §5).

"In order to use queueing theory based models to predict the capacity
needed for a latency sensitive function, the controller needs to know
the service time distribution.  In the scenario where the deflation
policy is used, the controller needs to know multiple service time
distributions under different container sizes.  LaSS supports two
approaches for this purpose: 1) load offline profiling results ... and
2) use an online learning algorithm to learn the service time
distribution(s) over time."

:class:`ServiceTimeProfile` is the offline path: a table of mean service
times (and a distributional shape) per container size, interpolated for
intermediate deflation levels.  :class:`OnlineServiceTimeEstimator` is
the online path: it ingests ``(cpu_fraction, service_time)`` samples
from completed requests and maintains running means and streaming
quantiles per CPU bucket.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.queueing.distributions import Exponential, ServiceTimeDistribution


@dataclass(frozen=True)
class ServiceTimeProfile:
    """Offline service-time profile of one function.

    Parameters
    ----------
    function_name:
        The profiled function.
    cpu_fractions:
        Sorted CPU fractions (of the standard container size) at which
        the function was profiled, e.g. ``(0.3, 0.5, 0.7, 1.0)``.
    mean_service_times:
        Mean service time measured at each profiled CPU fraction.
    distribution:
        Distribution family of the service time at the standard size;
        scaled copies are returned for other sizes.
    """

    function_name: str
    cpu_fractions: Tuple[float, ...]
    mean_service_times: Tuple[float, ...]
    distribution: ServiceTimeDistribution = field(default_factory=lambda: Exponential(0.1))

    def __post_init__(self) -> None:
        """Validate the profile table's shape and ordering."""
        if len(self.cpu_fractions) != len(self.mean_service_times):
            raise ValueError("cpu_fractions and mean_service_times must have equal length")
        if len(self.cpu_fractions) == 0:
            raise ValueError("profile must contain at least one point")
        if any(f <= 0 or f > 1.0 + 1e-9 for f in self.cpu_fractions):
            raise ValueError("cpu fractions must be in (0, 1]")
        if any(s <= 0 for s in self.mean_service_times):
            raise ValueError("service times must be positive")
        if list(self.cpu_fractions) != sorted(self.cpu_fractions):
            raise ValueError("cpu_fractions must be sorted ascending")

    @classmethod
    def from_speed_curve(
        cls,
        function_name: str,
        standard_mean: float,
        speed_of_cpu,
        cpu_fractions: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        distribution: Optional[ServiceTimeDistribution] = None,
    ) -> "ServiceTimeProfile":
        """Build a profile from a deflation response curve.

        ``speed_of_cpu(fraction)`` gives relative speed; mean service time
        at that fraction is ``standard_mean / speed``.
        """
        fractions = tuple(sorted(float(f) for f in cpu_fractions))
        means = tuple(standard_mean / max(1e-9, speed_of_cpu(f)) for f in fractions)
        dist = distribution or Exponential(standard_mean)
        return cls(function_name, fractions, means, dist)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def mean_service_time(self, cpu_fraction: float = 1.0) -> float:
        """Mean service time at a CPU fraction (linear interpolation)."""
        if cpu_fraction <= 0:
            raise ValueError("cpu_fraction must be positive")
        fractions = np.asarray(self.cpu_fractions)
        means = np.asarray(self.mean_service_times)
        return float(np.interp(cpu_fraction, fractions, means))

    def service_rate(self, cpu_fraction: float = 1.0) -> float:
        """Service rate μ at a CPU fraction."""
        return 1.0 / self.mean_service_time(cpu_fraction)

    def percentile(self, p: float, cpu_fraction: float = 1.0) -> float:
        """The ``p``-th percentile of the service time at a CPU fraction."""
        scale = self.mean_service_time(cpu_fraction) / self.distribution.mean
        return self.distribution.scaled(scale).percentile(p)

    def distribution_at(self, cpu_fraction: float = 1.0) -> ServiceTimeDistribution:
        """The service-time distribution at a CPU fraction."""
        scale = self.mean_service_time(cpu_fraction) / self.distribution.mean
        return self.distribution.scaled(scale)


class StreamingQuantile:
    """A simple reservoir-based streaming quantile estimator.

    Keeps a bounded, sorted sample of observations and answers quantile
    queries from it.  For the request volumes in these experiments
    (thousands to hundreds of thousands) the reservoir is effectively
    exact; the bound exists so that memory stays constant in very long
    runs.
    """

    def __init__(self, max_samples: int = 4096, seed: int = 17) -> None:
        """Configure the reservoir size and its deterministic RNG seed."""
        if max_samples < 10:
            raise ValueError("max_samples must be at least 10")
        self.max_samples = int(max_samples)
        self._sorted: List[float] = []
        self._count = 0
        # stdlib RNG: an order of magnitude cheaper per draw than a numpy
        # Generator for scalar uniforms, and this sits on the completion path
        self._rng = random.Random(seed)

    @property
    def count(self) -> int:
        """Total number of observations seen (not the reservoir size)."""
        return self._count

    def add(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        if math.isnan(value) or value < 0:
            raise ValueError("observations must be non-negative numbers")
        self._count += 1
        if len(self._sorted) < self.max_samples:
            bisect.insort(self._sorted, value)
        else:
            # reservoir sampling: replace a random element with probability
            # k/n.  A single uniform draw decides acceptance (acceptance
            # probability shrinks as 1/n, so the common case is one cheap
            # comparison per observation — this sits on the per-completion
            # hot path via OnlineServiceTimeEstimator.observe).
            if self._rng.random() * self._count < self.max_samples:
                self._sorted.pop(int(self._rng.random() * len(self._sorted)))
                bisect.insort(self._sorted, value)

    def add_many(self, values: List[float]) -> None:
        """Add a batch of observations, state-for-state identical to ``add``.

        Same validation, reservoir decisions, and RNG consumption as
        calling :meth:`add` per element — just with the per-call
        overhead hoisted out of the loop, for the columnar data plane's
        batched completion folds.
        """
        sorted_values = self._sorted
        max_samples = self.max_samples
        count = self._count
        rng_random = self._rng.random
        insort = bisect.insort
        isnan = math.isnan
        for value in values:
            value = float(value)
            if isnan(value) or value < 0:
                self._count = count
                raise ValueError("observations must be non-negative numbers")
            count += 1
            if len(sorted_values) < max_samples:
                insort(sorted_values, value)
            elif rng_random() * count < max_samples:
                sorted_values.pop(int(rng_random() * len(sorted_values)))
                insort(sorted_values, value)
        self._count = count

    def quantile(self, q: float) -> float:
        """The ``q``-th quantile of the observations seen so far."""
        if not 0 < q < 1:
            raise ValueError("q must be in (0, 1)")
        if not self._sorted:
            raise ValueError("no observations yet")
        return float(np.quantile(self._sorted, q))

    @property
    def mean(self) -> float:
        """Mean of the reservoir sample."""
        if not self._sorted:
            raise ValueError("no observations yet")
        return float(np.mean(self._sorted))


class OnlineServiceTimeEstimator:
    """Learns per-CPU-fraction service-time statistics from completed requests.

    Observations are bucketed by CPU fraction (default bucket width 10 %
    of the standard size) so that deflated and standard containers
    contribute to separate estimates, which is what the deflation policy
    needs (§5).

    The default reservoir of 1024 samples per bucket keeps the mean and
    the 95th/99th percentiles well within the noise floor of the
    simulated service-time distributions while bounding the fill-phase
    ``insort`` cost, which sits on the per-completion hot path.
    """

    def __init__(self, bucket_width: float = 0.1, max_samples_per_bucket: int = 1024) -> None:
        """Configure the CPU-fraction bucketing and per-bucket reservoirs."""
        if not 0 < bucket_width <= 1:
            raise ValueError("bucket_width must be in (0, 1]")
        self.bucket_width = float(bucket_width)
        self.max_samples_per_bucket = int(max_samples_per_bucket)
        self._buckets: Dict[int, StreamingQuantile] = {}
        # [count, total] mutated in place (a fresh tuple per observation
        # showed up in hot-path profiles)
        self._totals: Dict[int, List[float]] = {}

    def _bucket(self, cpu_fraction: float) -> int:
        """Bucket index for a CPU fraction."""
        if cpu_fraction <= 0:
            raise ValueError("cpu_fraction must be positive")
        return int(round(min(1.0, cpu_fraction) / self.bucket_width))

    def observe(self, cpu_fraction: float, service_time: float) -> None:
        """Record one completed request's service time at the given CPU fraction."""
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        key = self._bucket(cpu_fraction)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = StreamingQuantile(self.max_samples_per_bucket)
            self._totals[key] = [0, 0.0]
        bucket.add(service_time)
        totals = self._totals[key]
        totals[0] += 1
        totals[1] += service_time

    def observe_many(self, cpu_fractions: List[float],
                     service_times: List[float]) -> None:
        """Record a batch of completions, state-for-state identical to ``observe``.

        Observations are grouped by CPU-fraction bucket (preserving
        per-bucket order, which is all the reservoirs and running totals
        can see) so each bucket is touched once per batch.  Running
        totals still accumulate element by element in order — float
        addition is not associative, and the totals must stay bit-equal
        to the per-observation path.
        """
        bucket_width = self.bucket_width
        groups: Dict[int, List[float]]
        first = cpu_fractions[0] if cpu_fractions else 1.0
        if cpu_fractions and cpu_fractions.count(first) == len(cpu_fractions):
            # uniform fleet fast path: one bucket for the whole batch
            if first <= 0:
                raise ValueError("cpu_fraction must be positive")
            if min(service_times) < 0:
                raise ValueError("service_time must be non-negative")
            key = int(round(min(1.0, first) / bucket_width))
            groups = {key: list(service_times)}
        else:
            groups = {}
            for cpu_fraction, service_time in zip(cpu_fractions, service_times):
                if service_time < 0:
                    raise ValueError("service_time must be non-negative")
                if cpu_fraction <= 0:
                    raise ValueError("cpu_fraction must be positive")
                key = int(round(min(1.0, cpu_fraction) / bucket_width))
                group = groups.get(key)
                if group is None:
                    group = groups[key] = []
                group.append(service_time)
        for key, values in groups.items():
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = StreamingQuantile(self.max_samples_per_bucket)
                self._totals[key] = [0, 0.0]
            bucket.add_many(values)
            totals = self._totals[key]
            totals[0] += len(values)
            running = totals[1]
            for value in values:
                running += value
            totals[1] = running

    def observations(self, cpu_fraction: float = 1.0) -> int:
        """Number of observations for the bucket containing ``cpu_fraction``."""
        key = self._bucket(cpu_fraction)
        return self._totals.get(key, (0, 0.0))[0]

    def mean_service_time(self, cpu_fraction: float = 1.0) -> Optional[float]:
        """Learned mean service time at a CPU fraction, or ``None`` if unseen.

        Falls back to the nearest observed bucket when the exact bucket
        has no data (e.g. asking about 70 % CPU when only standard
        containers have run so far); scales by the CPU ratio under the
        proportional-slowdown assumption.
        """
        key = self._bucket(cpu_fraction)
        if key in self._totals and self._totals[key][0] > 0:
            count, total = self._totals[key]
            return total / count
        if not self._totals:
            return None
        nearest = min(self._totals, key=lambda k: abs(k - key))
        count, total = self._totals[nearest]
        if count == 0:
            return None
        nearest_fraction = nearest * self.bucket_width
        observed_mean = total / count
        return observed_mean * (nearest_fraction / max(1e-9, cpu_fraction))

    def service_rate(self, cpu_fraction: float = 1.0) -> Optional[float]:
        """Learned service rate μ at a CPU fraction, or ``None`` if unseen."""
        mean = self.mean_service_time(cpu_fraction)
        return None if mean is None or mean <= 0 else 1.0 / mean

    def percentile(self, p: float, cpu_fraction: float = 1.0) -> Optional[float]:
        """Learned percentile of the service time, or ``None`` if unseen."""
        key = self._bucket(cpu_fraction)
        bucket = self._buckets.get(key)
        if bucket is None or bucket.count == 0:
            mean = self.mean_service_time(cpu_fraction)
            if mean is None:
                return None
            # exponential assumption as a prior when only the mean is known
            return -mean * math.log(1.0 - p)
        return bucket.quantile(p)


__all__ = ["ServiceTimeProfile", "OnlineServiceTimeEstimator", "StreamingQuantile"]
