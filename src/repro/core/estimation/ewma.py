"""Exponentially weighted moving average of per-epoch observations.

The paper (§3.3): "The observed request rate in each epoch yields a
time series of per-epoch observations that is subjected to an
exponential weighted moving average (EWMA) with a high weight given to
the most recent epoch."
"""

from __future__ import annotations

from typing import List, Optional


class EwmaEstimator:
    """EWMA over a scalar time series.

    Parameters
    ----------
    alpha:
        Weight of the most recent observation; the paper uses a "high
        weight given to the most recent epoch", so the default is 0.7.
    initial:
        Optional initial value; if omitted, the first observation seeds
        the average directly.
    """

    def __init__(self, alpha: float = 0.7, initial: Optional[float] = None) -> None:
        """Configure the smoothing factor and optional initial estimate."""
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._value: Optional[float] = None if initial is None else float(initial)
        self._history: List[float] = []
        self._observations = 0

    @property
    def value(self) -> Optional[float]:
        """The current smoothed value (``None`` before any observation)."""
        return self._value

    @property
    def observations(self) -> int:
        """Number of observations folded in so far."""
        return self._observations

    @property
    def history(self) -> List[float]:
        """Smoothed value after each observation (a copy)."""
        return list(self._history)

    def update(self, observation: float) -> float:
        """Fold in one per-epoch observation and return the new smoothed value."""
        observation = float(observation)
        if observation < 0:
            raise ValueError("observations must be non-negative")
        if self._value is None:
            self._value = observation
        else:
            self._value = self.alpha * observation + (1.0 - self.alpha) * self._value
        self._observations += 1
        self._history.append(self._value)
        return self._value

    def predict(self) -> float:
        """The smoothed value, or 0.0 when nothing has been observed yet."""
        return 0.0 if self._value is None else self._value

    def reset(self, initial: Optional[float] = None) -> None:
        """Forget all history."""
        self._value = None if initial is None else float(initial)
        self._history.clear()
        self._observations = 0


__all__ = ["EwmaEstimator"]
