"""Dual sliding-window arrival-rate estimation with burst detection.

From the paper (§5): "LaSS accomplishes this by monitoring two sliding
windows every 5 seconds: a 2-minute long window and a 10-second short
window.  When no burst is detected, the arrival rate is calculated
using the long window, but when there is a burst, i.e., if the arrival
rate in the short window is twice as high as the arrival rate in the
long window, LaSS switches to calculating the arrival rate based on the
short window."

Implementation
--------------
:class:`SlidingWindowCounter` is a **bucketized ring buffer**: arrivals
are aggregated into fixed-width time buckets (by default the paper's
5-second sampling granularity, clamped to half the window), so

* :meth:`SlidingWindowCounter.record` is O(1) amortised — one array
  increment, never a per-event deque append;
* memory is **constant** per window (``window / bucket + 1`` bucket
  counts), where the seed implementation kept one float per arrival —
  O(arrival rate × window) under bursts;
* :meth:`SlidingWindowCounter.count` sums a constant number of buckets.

The price is bucket-granularity eviction: a query at time ``now``
counts whole buckets overlapping ``(now − window, now]``, including the
oldest partially-overlapping one.  Queries aligned to bucket boundaries
(the controller samples every 5 s, so all its queries are aligned) are
exact up to events lying exactly on a boundary; unaligned queries
over-approximate by up to one bucket of history — never under-count,
so a burst can only be detected slightly early, not missed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: The paper's rate-sampling granularity; default bucket width.
DEFAULT_BUCKET_SECONDS = 5.0


class SlidingWindowCounter:
    """Counts events whose timestamps fall within a trailing window.

    Parameters
    ----------
    window_length:
        Length of the trailing window in seconds.
    bucket_width:
        Aggregation granularity; defaults to 5 s (the paper's sampling
        interval) clamped to ``window_length / 2`` so even short windows
        get at least two buckets.
    """

    def __init__(self, window_length: float, bucket_width: Optional[float] = None) -> None:
        """Size the ring buffer for the window length and bucket width."""
        if window_length <= 0:
            raise ValueError("window length must be positive")
        self.window_length = float(window_length)
        if bucket_width is None:
            bucket_width = min(DEFAULT_BUCKET_SECONDS, self.window_length / 2.0)
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        if bucket_width > self.window_length:
            raise ValueError("bucket width cannot exceed the window length")
        self.bucket_width = float(bucket_width)
        # enough buckets to cover the window plus the partially-filled
        # current bucket
        self._n_buckets = int(math.ceil(self.window_length / self.bucket_width)) + 1
        self._counts: List[int] = [0] * self._n_buckets
        #: absolute index (timestamp // bucket_width) of the newest bucket,
        #: or None before the first event
        self._head: Optional[int] = None
        self._last_timestamp = -math.inf

    def _advance(self, index: int) -> None:
        """Move the head forward to absolute bucket ``index``, zeroing gaps."""
        head = self._head
        if head is None:
            self._counts = [0] * self._n_buckets
            self._head = index
            return
        if index <= head:
            return
        steps = index - head
        n = self._n_buckets
        counts = self._counts
        if steps >= n:
            for i in range(n):
                counts[i] = 0
        else:
            for i in range(head + 1, index + 1):
                counts[i % n] = 0
        self._head = index

    def record(self, timestamp: float) -> None:
        """Record one event at ``timestamp`` (timestamps must be non-decreasing)."""
        timestamp = float(timestamp)
        if timestamp < self._last_timestamp - 1e-9:
            raise ValueError("timestamps must be non-decreasing")
        self._last_timestamp = timestamp
        index = int(timestamp // self.bucket_width)
        head = self._head
        if head is not None and index <= head - self._n_buckets:
            # a count()/rate() query already advanced the ring past this
            # bucket; writing would alias a *newer* slot and fabricate
            # phantom events inside the current window — the event is
            # outside any window that advanced the head, so drop it
            return
        self._advance(index)
        self._counts[index % self._n_buckets] += 1

    def record_many(self, timestamps: "List[float]") -> None:
        """Record a batch of events; equivalent to :meth:`record` per element.

        The fast path requires a non-decreasing batch (which per-element
        recording would demand anyway) and folds the batch bucket by
        bucket instead of event by event; an unsorted batch falls back
        to per-element recording so error behaviour matches exactly.
        """
        n = len(timestamps)
        if n == 0:
            return
        if n == 1:
            self.record(timestamps[0])
            return
        first = float(timestamps[0])
        if first < self._last_timestamp - 1e-9:
            raise ValueError("timestamps must be non-decreasing")
        width = self.bucket_width
        batch = np.asarray(timestamps, dtype=np.float64)
        if np.any(np.diff(batch) < -1e-9):
            # unsorted batch: replay per element for identical semantics
            for late in timestamps:
                self.record(late)
            return
        # int(t // width) element-wise: floor_divide matches Python's
        # float floor division bit-for-bit, and the result is integral
        indices = np.floor_divide(batch, width).astype(np.int64)
        unique, unique_counts = np.unique(indices, return_counts=True)
        self._last_timestamp = float(batch[-1])
        n_buckets = self._n_buckets
        for index, batched in zip(unique.tolist(), unique_counts.tolist()):
            head = self._head
            if head is not None and index <= head - n_buckets:
                # same stale-bucket drop as record()
                continue
            self._advance(index)
            self._counts[index % n_buckets] += batched

    def count(self, now: float) -> int:
        """Number of events in buckets overlapping ``(now − window, now]``."""
        head = self._head
        if head is None:
            return 0
        newest = int(now // self.bucket_width)
        self._advance(newest)
        head = self._head
        oldest_kept = head - self._n_buckets + 1
        # floor: the oldest *partially* covered bucket is included, so an
        # unaligned query over-approximates (never misses in-window events —
        # under-counting the short window would delay burst detection)
        first = int(math.floor((now - self.window_length) / self.bucket_width))
        first = max(first, oldest_kept)
        last = min(newest, head)
        if last < first:
            return 0
        counts = self._counts
        n = self._n_buckets
        return sum(counts[i % n] for i in range(first, last + 1))

    def rate(self, now: float, elapsed: Optional[float] = None) -> float:
        """Arrival rate over the window (events per second).

        ``elapsed`` caps the divisor for the start-up transient when less
        than a full window of history exists.
        """
        horizon = self.window_length
        if elapsed is not None:
            horizon = min(horizon, max(elapsed, 1e-9))
        return self.count(now) / horizon

    def clear(self) -> None:
        """Drop all recorded events."""
        self._counts = [0] * self._n_buckets
        self._head = None
        self._last_timestamp = -math.inf


@dataclass
class RateObservation:
    """One rate sample produced by the dual-window estimator."""

    time: float
    long_rate: float
    short_rate: float
    burst_detected: bool
    rate: float


class DualWindowRateEstimator:
    """The prototype's arrival-rate estimator (long + short window, burst switch).

    Parameters
    ----------
    long_window:
        Length of the long window in seconds (paper: 120 s).
    short_window:
        Length of the short window in seconds (paper: 10 s).
    burst_factor:
        Burst threshold: the short-window rate must be at least this
        multiple of the long-window rate (paper: 2×).
    bucket_width:
        Aggregation granularity of both windows (paper samples every 5 s;
        clamped per window, see :class:`SlidingWindowCounter`).
    """

    def __init__(
        self,
        long_window: float = 120.0,
        short_window: float = 10.0,
        burst_factor: float = 2.0,
        bucket_width: Optional[float] = None,
    ) -> None:
        """Configure the long/short windows and the burst-switch factor."""
        if short_window >= long_window:
            raise ValueError("short window must be shorter than the long window")
        if burst_factor <= 1.0:
            raise ValueError("burst factor must exceed 1")
        self.long = SlidingWindowCounter(long_window, bucket_width)
        self.short = SlidingWindowCounter(short_window, bucket_width)
        self.burst_factor = float(burst_factor)
        self._start_time: Optional[float] = None
        self._last_observation: Optional[RateObservation] = None

    def record_arrival(self, timestamp: float) -> None:
        """Record one request arrival."""
        if self._start_time is None:
            self._start_time = timestamp
        self.long.record(timestamp)
        self.short.record(timestamp)

    def record_arrivals_many(self, timestamps: "List[float]") -> None:
        """Record a batch of arrivals; equivalent to :meth:`record_arrival` each."""
        if not timestamps:
            return
        if self._start_time is None:
            self._start_time = timestamps[0]
        self.long.record_many(timestamps)
        self.short.record_many(timestamps)

    def estimate(self, now: float) -> RateObservation:
        """Produce a rate estimate at time ``now`` (paper: sampled every 5 s)."""
        elapsed = None if self._start_time is None else now - self._start_time
        long_rate = self.long.rate(now, elapsed)
        short_rate = self.short.rate(now, elapsed)
        burst = short_rate >= self.burst_factor * long_rate and short_rate > 0
        rate = short_rate if burst else long_rate
        observation = RateObservation(
            time=now, long_rate=long_rate, short_rate=short_rate,
            burst_detected=burst, rate=rate,
        )
        self._last_observation = observation
        return observation

    @property
    def last_observation(self) -> Optional[RateObservation]:
        """The most recent :class:`RateObservation`, if any."""
        return self._last_observation

    def rates(self, now: float) -> Tuple[float, float]:
        """Convenience accessor returning ``(long_rate, short_rate)``."""
        elapsed = None if self._start_time is None else now - self._start_time
        return self.long.rate(now, elapsed), self.short.rate(now, elapsed)


__all__ = [
    "SlidingWindowCounter",
    "DualWindowRateEstimator",
    "RateObservation",
    "DEFAULT_BUCKET_SECONDS",
]
