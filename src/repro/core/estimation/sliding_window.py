"""Dual sliding-window arrival-rate estimation with burst detection.

From the paper (§5): "LaSS accomplishes this by monitoring two sliding
windows every 5 seconds: a 2-minute long window and a 10-second short
window.  When no burst is detected, the arrival rate is calculated
using the long window, but when there is a burst, i.e., if the arrival
rate in the short window is twice as high as the arrival rate in the
long window, LaSS switches to calculating the arrival rate based on the
short window."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple


class SlidingWindowCounter:
    """Counts events whose timestamps fall within a trailing window."""

    def __init__(self, window_length: float) -> None:
        if window_length <= 0:
            raise ValueError("window length must be positive")
        self.window_length = float(window_length)
        self._events: Deque[float] = deque()

    def record(self, timestamp: float) -> None:
        """Record one event at ``timestamp`` (timestamps must be non-decreasing)."""
        if self._events and timestamp < self._events[-1] - 1e-9:
            raise ValueError("timestamps must be non-decreasing")
        self._events.append(float(timestamp))

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_length
        while self._events and self._events[0] <= cutoff:
            self._events.popleft()

    def count(self, now: float) -> int:
        """Number of events in ``(now − window, now]``."""
        self._evict(now)
        return len(self._events)

    def rate(self, now: float, elapsed: Optional[float] = None) -> float:
        """Arrival rate over the window (events per second).

        ``elapsed`` caps the divisor for the start-up transient when less
        than a full window of history exists.
        """
        self._evict(now)
        horizon = self.window_length
        if elapsed is not None:
            horizon = min(horizon, max(elapsed, 1e-9))
        return len(self._events) / horizon

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()


@dataclass
class RateObservation:
    """One rate sample produced by the dual-window estimator."""

    time: float
    long_rate: float
    short_rate: float
    burst_detected: bool
    rate: float


class DualWindowRateEstimator:
    """The prototype's arrival-rate estimator (long + short window, burst switch).

    Parameters
    ----------
    long_window:
        Length of the long window in seconds (paper: 120 s).
    short_window:
        Length of the short window in seconds (paper: 10 s).
    burst_factor:
        Burst threshold: the short-window rate must be at least this
        multiple of the long-window rate (paper: 2×).
    """

    def __init__(
        self,
        long_window: float = 120.0,
        short_window: float = 10.0,
        burst_factor: float = 2.0,
    ) -> None:
        if short_window >= long_window:
            raise ValueError("short window must be shorter than the long window")
        if burst_factor <= 1.0:
            raise ValueError("burst factor must exceed 1")
        self.long = SlidingWindowCounter(long_window)
        self.short = SlidingWindowCounter(short_window)
        self.burst_factor = float(burst_factor)
        self._start_time: Optional[float] = None
        self._last_observation: Optional[RateObservation] = None

    def record_arrival(self, timestamp: float) -> None:
        """Record one request arrival."""
        if self._start_time is None:
            self._start_time = timestamp
        self.long.record(timestamp)
        self.short.record(timestamp)

    def estimate(self, now: float) -> RateObservation:
        """Produce a rate estimate at time ``now`` (paper: sampled every 5 s)."""
        elapsed = None if self._start_time is None else now - self._start_time
        long_rate = self.long.rate(now, elapsed)
        short_rate = self.short.rate(now, elapsed)
        burst = short_rate >= self.burst_factor * long_rate and short_rate > 0
        rate = short_rate if burst else long_rate
        observation = RateObservation(
            time=now, long_rate=long_rate, short_rate=short_rate,
            burst_detected=burst, rate=rate,
        )
        self._last_observation = observation
        return observation

    @property
    def last_observation(self) -> Optional[RateObservation]:
        """The most recent :class:`RateObservation`, if any."""
        return self._last_observation

    def rates(self, now: float) -> Tuple[float, float]:
        """Convenience accessor returning ``(long_rate, short_rate)``."""
        elapsed = None if self._start_time is None else now - self._start_time
        return self.long.rate(now, elapsed), self.short.rate(now, elapsed)


__all__ = ["SlidingWindowCounter", "DualWindowRateEstimator", "RateObservation"]
