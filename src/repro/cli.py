"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``size``
    One-off container sizing: given an arrival rate, service time, SLO
    deadline and percentile, print the container count each model
    recommends (M/M/c reference, vectorised fast path, M/G/c with a
    chosen service-time variability).
``simulate``
    Run a single function on the simulated edge cluster under the LaSS
    controller and print the measured waiting-time percentiles, SLO
    attainment, and utilisation.
``experiment``
    Regenerate one of the paper's tables/figures and print its text
    rendering.  Valid names are enumerated programmatically from the
    scenario registry (:func:`repro.scenarios.registry.experiment_names`)
    so ``--help`` can never drift from what is actually registered.
``functions``
    List the Table 1 function catalogue.
``policies``
    List the registered control-plane policies (every controller —
    LaSS and the baselines — is a registry entry usable as
    ``controller.policy`` in a scenario, or via ``simulate --policy``).
``routers``
    List the registered global router policies of the federation layer
    (usable as ``federation.router`` in a scenario).
``scenario``
    Run one scenario — a registered name (``python -m repro scenario
    --list``) or a ``spec.json`` file — and emit the unified results
    JSON (schema ``repro/scenario-result@1``).
``sweep``
    Expand a parameter sweep (registered name or ``sweep.json``) and run
    its shards under the fault-tolerant executor — optionally across
    ``--workers`` processes, with per-shard ``--retries`` and
    ``--timeout``, a crash-safe ``--journal``, and ``--resume`` from a
    previous interrupted run.  The results JSON is byte-identical
    regardless of the worker count, and an interrupted-then-resumed run
    matches an uninterrupted one byte-for-byte.
``replay``
    Run the ``fig9-at-scale`` streaming trace replay: shard an
    Azure-scale synthetic population over the same fault-tolerant
    executor, then merge the per-shard envelopes into one
    ``repro/trace-replay@1`` envelope.  Inherits every ``sweep``
    resilience flag; the merged output is byte-identical for any
    ``--workers`` value and across interrupt+resume.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _cmd_size(args: argparse.Namespace) -> int:
    """Print the container counts the three queueing models recommend."""
    from repro.core.queueing.mgc import required_containers_mgc
    from repro.core.queueing.sizing import required_containers, required_containers_fast

    mu = 1.0 / args.service_time
    reference = required_containers(args.rate, mu, args.slo, args.percentile)
    fast = required_containers_fast(args.rate, mu, args.slo, args.percentile)
    mgc = required_containers_mgc(args.rate, args.service_time, args.scv, args.slo, args.percentile)
    print(f"arrival rate       : {args.rate:g} req/s")
    print(f"mean service time  : {args.service_time * 1000:g} ms (mu = {mu:g} req/s)")
    print(f"SLO                : P{args.percentile * 100:.0f} waiting time <= {args.slo * 1000:g} ms")
    print(f"M/M/c (Algorithm 1): {reference.containers} containers "
          f"(P(wait<=t) = {reference.achieved_probability:.3f})")
    print(f"M/M/c (fast path)  : {fast.containers} containers")
    print(f"M/G/c (SCV={args.scv:g})   : {mgc.containers} containers "
          f"(P(wait<=t) = {mgc.achieved_probability:.3f})")
    return 0


def _cmd_functions(args: argparse.Namespace) -> int:
    """Print the Table 1 function catalogue."""
    from repro.experiments.table1_functions import format_table1

    print(format_table1())
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    """Print the registered control-plane policies."""
    from repro.core.policy import describe_policies

    for name, summary in describe_policies():
        print(f"{name:<12} {summary}")
    return 0


def _cmd_routers(args: argparse.Namespace) -> int:
    """Print the registered global router policies."""
    from repro.federation.router import describe_routers

    for name, summary in describe_routers().items():
        print(f"{name:<20} {summary}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Simulate one function under a chosen policy and print its SLO outcome."""
    import json as _json

    from repro import ClusterConfig, ControllerConfig, ReclamationPolicy, SimulationRunner
    from repro.workloads import StaticRate, WorkloadBinding, get_function

    function = get_function(args.function)
    # handler-validated like the experiment verb: bad policy names, bad
    # JSON, and bad params exit 2 with a message, not a traceback
    try:
        policy_params = _json.loads(args.policy_params) if args.policy_params else None
    except _json.JSONDecodeError as error:
        print(f"--policy-params is not valid JSON: {error}", file=sys.stderr)
        return 2
    try:
        runner = SimulationRunner(
            workloads=[WorkloadBinding(function, StaticRate(args.rate, duration=args.duration),
                                       slo_deadline=args.slo)],
            cluster_config=ClusterConfig(node_count=args.nodes, cpu_per_node=args.cpu_per_node),
            controller_config=ControllerConfig(
                reclamation=ReclamationPolicy(args.reclamation),
            ),
            seed=args.seed,
            policy=args.policy,
            policy_params=policy_params,
        )
    except (KeyError, ValueError) as error:
        print(_error_text(error), file=sys.stderr)
        return 2
    result = runner.run(duration=args.duration)
    # exclude the start-up transient (first cold start + initial scale-up)
    # from the SLO accounting, like the experiment harnesses do
    warmup = min(30.0, args.duration / 4)
    summary = result.waiting_summary(function.name, warmup=warmup)
    slo = result.slo({function.name: args.slo}, warmup=warmup)[function.name]
    _, containers = result.container_timeline(function.name)
    print(f"function            : {function.name}")
    print(f"policy              : {args.policy}")
    print(f"completed requests  : {result.metrics.counters.get('completions', 0)}")
    print(f"final allocation    : {containers[-1] if containers else 0} containers")
    print(f"mean / P95 / P99 wait: {summary.mean * 1000:.1f} / {summary.p95 * 1000:.1f} / "
          f"{summary.p99 * 1000:.1f} ms")
    print(f"SLO attainment      : {slo.attainment * 100:.1f}% "
          f"({'met' if slo.satisfied else 'violated'})")
    print(f"mean utilisation    : {result.mean_utilization() * 100:.1f}%")
    return 0 if slo.satisfied else 1


def _error_text(error: BaseException) -> str:
    """The error's message without ``str(KeyError)``'s surrounding quotes."""
    if isinstance(error, KeyError) and error.args:
        return str(error.args[0])
    return str(error)


def _cmd_experiment(args: argparse.Namespace) -> int:
    """Regenerate one paper experiment via the registry-driven renderers."""
    from repro.experiments import render_experiment

    try:
        print(render_experiment(args.name.lower(), duration=args.duration))
    except KeyError as error:
        print(_error_text(error), file=sys.stderr)
        return 2
    return 0


def _load_spec_argument(argument: str, expect: str):
    """Resolve a ``<name|spec.json>`` argument to a spec or sweep object.

    ``expect`` (``"scenario"`` or ``"sweep"``) only tailors the error
    text for unrecognised files; both JSON schemas are recognised by
    their ``schema`` field, so a sweep file handed to ``scenario`` (or
    vice versa) still loads.
    """
    import os

    from repro.scenarios import build, get_entry
    from repro.scenarios.spec import SCENARIO_SCHEMA, ScenarioSpec
    from repro.scenarios.sweep import SWEEP_SCHEMA, SweepSpec

    if argument.endswith(".json") or os.path.isfile(argument):
        with open(argument, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        schema = data.get("schema")
        if schema == SWEEP_SCHEMA or "base" in data:
            return SweepSpec.from_dict(data)
        if schema == SCENARIO_SCHEMA or "kind" in data:
            return ScenarioSpec.from_dict(data)
        raise ValueError(f"{argument}: not a recognised {expect} JSON "
                         f"(no repro/scenario@1 or repro/sweep@1 schema field)")
    get_entry(argument)  # raises KeyError with the available names
    return build(argument)


def _emit_json(payload, output: Optional[str], pretty: bool) -> None:
    """Write results JSON to stdout or ``output`` (canonical unless pretty).

    File output goes through :func:`repro.ioutil.atomic_write_text`
    (write-temp-then-replace), so an interrupt mid-write can never leave
    a truncated, valid-looking results file.
    """
    from repro.ioutil import atomic_write_text
    from repro.scenarios.spec import canonical_json

    if pretty:
        text = json.dumps(payload, sort_keys=True, indent=2)
    else:
        text = canonical_json(payload)
    if output is None or output == "-":
        print(text)
    else:
        atomic_write_text(output, text + "\n")


def _cmd_scenario(args: argparse.Namespace) -> int:
    """Run one scenario (or a registered sweep, serially) and emit results JSON."""
    from repro.scenarios import describe, run_scenario
    from repro.scenarios.sweep import SweepRunner, SweepSpec

    if args.list:
        for name, tags, summary in describe():
            print(f"{name:<22} [{tags}] {summary}")
        return 0
    if args.spec is None:
        print("a scenario name or spec.json path is required (see --list)", file=sys.stderr)
        return 2
    from repro.scenarios.executor import ShardError

    try:
        spec = _load_spec_argument(args.spec, expect="scenario")
        if isinstance(spec, SweepSpec):
            payload = SweepRunner(spec, workers=1).run()
        else:
            payload = run_scenario(spec).data
    except (KeyError, ValueError, OSError, ShardError) as error:
        print(_error_text(error), file=sys.stderr)
        return 2
    _emit_json(payload, args.output, args.pretty)
    return 0


def _sigterm_as_interrupt(signum, frame) -> None:
    """SIGTERM handler: convert to KeyboardInterrupt for clean teardown.

    The executor's cleanup path (terminate live workers, close the
    journal) runs on KeyboardInterrupt, so a SIGTERM'd sweep leaves a
    parseable journal and no partial output file — the same guarantees
    Ctrl-C gets.
    """
    raise KeyboardInterrupt


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Expand and run a sweep with the fault-tolerant executor; emit results JSON.

    Exit codes: 0 = every shard ok; 1 = completed but degraded (the
    envelope carries ``incomplete`` and per-shard ``status``); 2 = usage
    or spec errors; 130 = interrupted (journal intact, no output file).
    """
    import signal

    from repro.scenarios import describe, get_entry
    from repro.scenarios.executor import ResilientSweepRunner
    from repro.scenarios.spec import ScenarioSpec
    from repro.scenarios.sweep import SweepSpec

    if args.list:
        for name, tags, summary in describe():
            try:
                if isinstance(get_entry(name).build(), SweepSpec):
                    print(f"{name:<22} [{tags}] {summary}")
            except Exception:  # pragma: no cover - defensive: builder failure
                continue
        return 0
    if args.spec is None:
        print("a sweep name or sweep.json path is required (see --list)", file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("--resume requires --journal PATH", file=sys.stderr)
        return 2
    try:
        spec = _load_spec_argument(args.spec, expect="sweep")
        if isinstance(spec, ScenarioSpec):
            print(f"{args.spec!r} is a single scenario, not a sweep; "
                  f"use 'python -m repro scenario'", file=sys.stderr)
            return 2
        runner = ResilientSweepRunner(
            spec,
            workers=args.workers,
            retries=args.retries,
            timeout=args.timeout,
            backoff_base=args.backoff_base,
            journal=args.journal,
            resume=args.resume,
            on_failure="continue",
        )
    except (KeyError, ValueError, OSError) as error:
        print(_error_text(error), file=sys.stderr)
        return 2
    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm_as_interrupt)
    try:
        payload = runner.run()
    except KeyboardInterrupt:
        where = f"; journal intact at {args.journal!r} (resume with --resume)" \
            if args.journal else ""
        print(f"sweep interrupted{where}", file=sys.stderr)
        return 130
    except (KeyError, ValueError, OSError) as error:
        print(_error_text(error), file=sys.stderr)
        return 2
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
    _emit_json(payload, args.output, args.pretty)
    if payload.get("incomplete"):
        failed = [r for r in payload["results"] if r.get("status") != "ok"]
        print(f"sweep degraded: {len(failed)}/{len(payload['results'])} "
              f"shard(s) did not complete (see per-shard 'status'/'error')",
              file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Run the sharded at-scale trace replay and emit the merged envelope.

    Exit codes mirror ``sweep``: 0 = merged envelope written; 1 =
    degraded sweep (nothing merged — a partial replay would understate
    every total; resume it instead); 2 = usage errors; 130 =
    interrupted (journal intact, no output file).
    """
    import signal

    from repro.scenarios import build
    from repro.scenarios.executor import ResilientSweepRunner
    from repro.scenarios.trace_shard import merge_trace_shards

    if args.resume and not args.journal:
        print("--resume requires --journal PATH", file=sys.stderr)
        return 2
    try:
        sweep = build(
            "fig9-at-scale",
            functions=args.functions,
            duration_minutes=args.minutes,
            shards=args.shards,
            chunk_minutes=args.chunk_minutes,
            sketch_size=args.sketch_size,
        )
        runner = ResilientSweepRunner(
            sweep,
            workers=args.workers,
            retries=args.retries,
            timeout=args.timeout,
            journal=args.journal,
            resume=args.resume,
            on_failure="continue",
        )
    except (KeyError, ValueError, OSError) as error:
        print(_error_text(error), file=sys.stderr)
        return 2
    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm_as_interrupt)
    try:
        envelope = runner.run()
    except KeyboardInterrupt:
        where = f"; journal intact at {args.journal!r} (resume with --resume)" \
            if args.journal else ""
        print(f"replay interrupted{where}", file=sys.stderr)
        return 130
    except (KeyError, ValueError, OSError) as error:
        print(_error_text(error), file=sys.stderr)
        return 2
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
    if envelope.get("incomplete"):
        failed = [r for r in envelope["results"] if r.get("status") != "ok"]
        print(f"replay degraded: {len(failed)}/{len(envelope['results'])} "
              f"shard(s) did not complete; not merging a partial replay "
              f"(re-run with --journal/--resume)", file=sys.stderr)
        return 1
    _emit_json(merge_trace_shards(envelope), args.output, args.pretty)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    from repro.scenarios.registry import experiment_names

    parser = argparse.ArgumentParser(
        prog="repro", description="LaSS reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    size = sub.add_parser("size", help="container sizing from the queueing models")
    size.add_argument("--rate", type=float, required=True, help="arrival rate (req/s)")
    size.add_argument("--service-time", type=float, required=True,
                      help="mean service time of a standard container (s)")
    size.add_argument("--slo", type=float, default=0.1, help="SLO deadline (s)")
    size.add_argument("--percentile", type=float, default=0.95, help="SLO percentile")
    size.add_argument("--scv", type=float, default=1.0,
                      help="squared coefficient of variation for the M/G/c model")
    size.set_defaults(func=_cmd_size)

    functions = sub.add_parser("functions", help="list the Table 1 function catalogue")
    functions.set_defaults(func=_cmd_functions)

    policies = sub.add_parser("policies",
                              help="list the registered control-plane policies")
    policies.set_defaults(func=_cmd_policies)

    routers = sub.add_parser("routers",
                             help="list the registered global router policies")
    routers.set_defaults(func=_cmd_routers)

    simulate = sub.add_parser("simulate",
                              help="simulate one function under a control-plane policy")
    simulate.add_argument("--function", default="squeezenet")
    simulate.add_argument("--rate", type=float, default=20.0)
    simulate.add_argument("--slo", type=float, default=0.1)
    simulate.add_argument("--duration", type=float, default=300.0)
    simulate.add_argument("--nodes", type=int, default=3)
    simulate.add_argument("--cpu-per-node", type=float, default=4.0)
    simulate.add_argument("--reclamation", choices=["termination", "deflation"],
                          default="deflation")
    simulate.add_argument("--policy", default="lass",
                          help="control-plane policy name (see 'policies')")
    simulate.add_argument("--policy-params", default=None,
                          help="policy-specific configuration as a JSON object")
    simulate.add_argument("--seed", type=int, default=1)
    simulate.set_defaults(func=_cmd_simulate)

    valid_experiments = experiment_names()
    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure",
        description="Regenerate one paper experiment. Valid names (from the "
                    "scenario registry): " + ", ".join(valid_experiments),
    )
    # validated in the handler (exit code 2) rather than via argparse
    # ``choices`` so unknown names return instead of raising SystemExit
    experiment.add_argument("name", metavar="{" + ",".join(valid_experiments) + "}",
                            help="experiment to regenerate")
    experiment.add_argument("--duration", type=float, default=None,
                            help="override the experiment's duration parameter")
    experiment.set_defaults(func=_cmd_experiment)

    scenario = sub.add_parser(
        "scenario", help="run a scenario (registered name or spec.json)",
        description="Run one scenario and emit the unified results JSON "
                    "(schema repro/scenario-result@1).",
    )
    scenario.add_argument("spec", nargs="?", default=None,
                          help="registered scenario name or path to a spec.json")
    scenario.add_argument("--list", action="store_true",
                          help="list the registered scenarios and exit")
    scenario.add_argument("--output", "-o", default=None,
                          help="write results JSON to this file ('-' = stdout)")
    scenario.add_argument("--pretty", action="store_true",
                          help="indent the JSON output (default: canonical bytes)")
    scenario.set_defaults(func=_cmd_scenario)

    sweep = sub.add_parser(
        "sweep", help="expand and run a parameter sweep, optionally in parallel",
        description="Expand a sweep's parameter grid and run every shard "
                    "under the fault-tolerant executor (per-shard retries, "
                    "timeouts, journaling, resume). Results are "
                    "byte-identical for any --workers value, and an "
                    "interrupted-then-resumed run matches an uninterrupted "
                    "one byte-for-byte.",
    )
    sweep.add_argument("spec", nargs="?", default=None,
                       help="registered sweep name or path to a sweep.json")
    sweep.add_argument("--list", action="store_true",
                       help="list the registered sweeps and exit")
    sweep.add_argument("--workers", "-j", type=int, default=1,
                       help="worker processes (default 1 = serial)")
    sweep.add_argument("--output", "-o", default=None,
                       help="write results JSON to this file ('-' = stdout); "
                            "written atomically (temp file + rename)")
    sweep.add_argument("--pretty", action="store_true",
                       help="indent the JSON output (default: canonical bytes)")
    sweep.add_argument("--journal", default=None, metavar="PATH",
                       help="append shard lifecycle records (JSONL) to PATH "
                            "with fsync'd writes; enables --resume")
    sweep.add_argument("--resume", action="store_true",
                       help="skip shards whose 'ok' journal record matches "
                            "the current spec hash; recompute the rest")
    sweep.add_argument("--retries", type=int, default=0,
                       help="extra attempts per shard after a failure/timeout "
                            "(default 0); retries never change result bytes")
    sweep.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-shard wall-clock budget; an overrunning "
                            "worker is killed and the attempt retried")
    sweep.add_argument("--backoff-base", type=float, default=0.5, metavar="SECONDS",
                       help="base delay of the capped exponential retry "
                            "backoff (default 0.5; jitter is deterministic "
                            "from the shard seed)")
    sweep.set_defaults(func=_cmd_sweep)

    replay = sub.add_parser(
        "replay", help="run the fig9-at-scale streaming trace replay",
        description="Shard the Azure-scale synthetic population over the "
                    "fault-tolerant executor, stream every shard through "
                    "the constant-memory replay kernel, and merge the "
                    "shard envelopes into one repro/trace-replay@1 "
                    "envelope. Output bytes are identical for any "
                    "--workers value and across interrupt+resume.",
    )
    replay.add_argument("--functions", type=int, default=10_000,
                        help="population size (default 10000)")
    replay.add_argument("--minutes", type=int, default=1440,
                        help="trace length in minutes (default 1440 = one day)")
    replay.add_argument("--shards", type=int, default=32,
                        help="contiguous function-range shards (default 32)")
    replay.add_argument("--chunk-minutes", type=int, default=360,
                        help="minutes of one trace held in memory at a time")
    replay.add_argument("--sketch-size", type=int, default=4096,
                        help="reservoir samples per shard sketch")
    replay.add_argument("--workers", "-j", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    replay.add_argument("--output", "-o", default=None,
                        help="write the merged envelope to this file "
                             "('-' = stdout); written atomically")
    replay.add_argument("--pretty", action="store_true",
                        help="indent the JSON output (default: canonical bytes)")
    replay.add_argument("--journal", default=None, metavar="PATH",
                        help="append shard lifecycle records (JSONL) to PATH; "
                             "enables --resume")
    replay.add_argument("--resume", action="store_true",
                        help="skip shards already completed in the journal")
    replay.add_argument("--retries", type=int, default=0,
                        help="extra attempts per shard after a failure/timeout")
    replay.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-shard wall-clock budget")
    replay.set_defaults(func=_cmd_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
