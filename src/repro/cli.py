"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``size``
    One-off container sizing: given an arrival rate, service time, SLO
    deadline and percentile, print the container count each model
    recommends (M/M/c reference, vectorised fast path, M/G/c with a
    chosen service-time variability).
``simulate``
    Run a single function on the simulated edge cluster under the LaSS
    controller and print the measured waiting-time percentiles, SLO
    attainment, and utilisation.
``experiment``
    Regenerate one of the paper's tables/figures (``table1``, ``fig3`` …
    ``fig9``) and print its text rendering.
``functions``
    List the Table 1 function catalogue.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.queueing.mgc import required_containers_mgc
from repro.core.queueing.sizing import required_containers, required_containers_fast


def _cmd_size(args: argparse.Namespace) -> int:
    mu = 1.0 / args.service_time
    reference = required_containers(args.rate, mu, args.slo, args.percentile)
    fast = required_containers_fast(args.rate, mu, args.slo, args.percentile)
    mgc = required_containers_mgc(args.rate, args.service_time, args.scv, args.slo, args.percentile)
    print(f"arrival rate       : {args.rate:g} req/s")
    print(f"mean service time  : {args.service_time * 1000:g} ms (mu = {mu:g} req/s)")
    print(f"SLO                : P{args.percentile * 100:.0f} waiting time <= {args.slo * 1000:g} ms")
    print(f"M/M/c (Algorithm 1): {reference.containers} containers "
          f"(P(wait<=t) = {reference.achieved_probability:.3f})")
    print(f"M/M/c (fast path)  : {fast.containers} containers")
    print(f"M/G/c (SCV={args.scv:g})   : {mgc.containers} containers "
          f"(P(wait<=t) = {mgc.achieved_probability:.3f})")
    return 0


def _cmd_functions(args: argparse.Namespace) -> int:
    from repro.experiments.table1_functions import format_table1

    print(format_table1())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro import ClusterConfig, ControllerConfig, ReclamationPolicy, SimulationRunner
    from repro.workloads import StaticRate, WorkloadBinding, get_function

    function = get_function(args.function)
    runner = SimulationRunner(
        workloads=[WorkloadBinding(function, StaticRate(args.rate, duration=args.duration),
                                   slo_deadline=args.slo)],
        cluster_config=ClusterConfig(node_count=args.nodes, cpu_per_node=args.cpu_per_node),
        controller_config=ControllerConfig(
            reclamation=ReclamationPolicy(args.reclamation),
        ),
        seed=args.seed,
    )
    result = runner.run(duration=args.duration)
    # exclude the start-up transient (first cold start + initial scale-up)
    # from the SLO accounting, like the experiment harnesses do
    warmup = min(30.0, args.duration / 4)
    summary = result.waiting_summary(function.name, warmup=warmup)
    slo = result.slo({function.name: args.slo}, warmup=warmup)[function.name]
    _, containers = result.container_timeline(function.name)
    print(f"function            : {function.name}")
    print(f"completed requests  : {result.metrics.counters['completions']}")
    print(f"final allocation    : {containers[-1] if containers else 0} containers")
    print(f"mean / P95 / P99 wait: {summary.mean * 1000:.1f} / {summary.p95 * 1000:.1f} / "
          f"{summary.p99 * 1000:.1f} ms")
    print(f"SLO attainment      : {slo.attainment * 100:.1f}% "
          f"({'met' if slo.satisfied else 'violated'})")
    print(f"mean utilisation    : {result.mean_utilization() * 100:.1f}%")
    return 0 if slo.satisfied else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name.lower()
    if name == "table1":
        from repro.experiments.table1_functions import format_table1
        print(format_table1())
    elif name == "fig3":
        from repro.experiments.fig3_homogeneous import format_fig3, run_fig3
        print(format_fig3(run_fig3(duration=args.duration or 300.0)))
    elif name == "fig4":
        from repro.experiments.fig4_heterogeneous import format_fig4, run_fig4
        print(format_fig4(run_fig4(duration=args.duration or 240.0)))
    elif name == "fig5":
        from repro.experiments.fig5_scalability import format_fig5, run_fig5
        print(format_fig5(run_fig5()))
    elif name == "fig6":
        from repro.experiments.fig6_autoscaling import run_fig6
        result = run_fig6(step_duration=args.duration or 60.0)
        times, counts = result.micro_timeline
        for t, c in zip(times, counts):
            print(f"t={t:7.1f}s  microbenchmark containers={c}")
    elif name == "fig7":
        from repro.experiments.fig7_deflation import format_fig7, run_fig7
        print(format_fig7(run_fig7()))
    elif name == "fig8":
        from repro.experiments.fig8_reclamation import format_fig8, run_fig8
        print(format_fig8(run_fig8(phase_duration=args.duration or 180.0)))
    elif name == "fig9":
        from repro.experiments.fig9_azure import format_fig9, run_fig9
        print(format_fig9(run_fig9(duration_minutes=int(args.duration or 30))))
    else:
        print(f"unknown experiment {args.name!r}; choose from table1, fig3..fig9", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LaSS reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    size = sub.add_parser("size", help="container sizing from the queueing models")
    size.add_argument("--rate", type=float, required=True, help="arrival rate (req/s)")
    size.add_argument("--service-time", type=float, required=True,
                      help="mean service time of a standard container (s)")
    size.add_argument("--slo", type=float, default=0.1, help="SLO deadline (s)")
    size.add_argument("--percentile", type=float, default=0.95, help="SLO percentile")
    size.add_argument("--scv", type=float, default=1.0,
                      help="squared coefficient of variation for the M/G/c model")
    size.set_defaults(func=_cmd_size)

    functions = sub.add_parser("functions", help="list the Table 1 function catalogue")
    functions.set_defaults(func=_cmd_functions)

    simulate = sub.add_parser("simulate", help="simulate one function under LaSS")
    simulate.add_argument("--function", default="squeezenet")
    simulate.add_argument("--rate", type=float, default=20.0)
    simulate.add_argument("--slo", type=float, default=0.1)
    simulate.add_argument("--duration", type=float, default=300.0)
    simulate.add_argument("--nodes", type=int, default=3)
    simulate.add_argument("--cpu-per-node", type=float, default=4.0)
    simulate.add_argument("--reclamation", choices=["termination", "deflation"],
                          default="deflation")
    simulate.add_argument("--seed", type=int, default=1)
    simulate.set_defaults(func=_cmd_simulate)

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", help="table1, fig3, fig4, fig5, fig6, fig7, fig8, fig9")
    experiment.add_argument("--duration", type=float, default=None,
                            help="override the experiment's duration parameter")
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
