"""The live fault-injection machinery: specs in, engine events out.

:class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultSpec`
into first-class simulation events and wires the failure semantics
through every layer:

* **engine** — node failures/recoveries are scheduled on the shared
  tuple-keyed heap at
  :data:`~repro.sim.engine.SimulationEngine.PRIORITY_FAULT` (after data
  events at the same instant, before control-plane ticks);
* **cluster** — :meth:`~repro.cluster.cluster.EdgeCluster.fail_node`
  evicts the node's containers (running requests fail, queued requests
  are salvaged) and removes the node from capacity accounting;
* **dispatcher** — a crash-on-dispatch interceptor at the dispatcher's
  single choke point fails the dispatched request and evicts the
  container with probability ``crash_probability``;
* **controller** — every fault is reported through the control-plane
  policy contract (:class:`~repro.core.policy.ControlPolicy`):
  ``on_node_failed`` / ``on_node_recovered`` / ``on_container_crashed``.
  Under LaSS these requeue salvaged work, start an immediate reactive
  re-provisioning pass, and suppress voluntary reclamation for the
  configured grace window; every registered policy implements its own
  reaction (the conformance tests pin that the hooks fire for all);
* **metrics** — availability, failed/requeued request counts, and
  per-failure recovery times accumulate in an
  :class:`~repro.metrics.availability.AvailabilityTracker` plus the run
  counters (``node_failures``, ``container_crashes``, ...).

Determinism
-----------
The injector adds no hidden entropy: node events fire at the spec's
explicit times, and the crash / cold-start draws come from the scenario
:class:`~repro.sim.rng.RngStreams` streams ``"faults:crash"`` and
``"faults:coldstart"``, consumed in event order.  When the spec is
empty the injector is never constructed, so healthy runs execute the
byte-identical event stream they always did.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container, ContainerState
from repro.core.policy import ControlPolicy
from repro.faults.spec import FaultSpec, NodeFailureSpec
from repro.metrics.availability import AvailabilityTracker, RecoveryRecord
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request
from repro.sim.rng import RngStreams


class FaultInjector:
    """Schedules and executes one scenario's fault plan.

    Parameters
    ----------
    engine, cluster, controller, metrics:
        The already-wired simulation stack (see
        :class:`~repro.simulation.SimulationRunner`, which constructs
        the injector when its scenario carries a fault spec).
    rng:
        The run's seeded stream registry; the injector draws only from
        its own named streams.
    spec:
        What to inject.  Node names are validated here — an unknown name
        is a spec bug and fails loudly at construction, not mid-run.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        controller: ControlPolicy,
        metrics: MetricsCollector,
        rng: RngStreams,
        spec: FaultSpec,
    ) -> None:
        """Validate the spec against the cluster and arm every fault."""
        self.engine = engine
        self.cluster = cluster
        self.controller = controller
        self.metrics = metrics
        self.spec = spec
        self.availability = AvailabilityTracker()

        known = {node.name for node in cluster.nodes}
        for failure in spec.node_failures:
            if failure.node not in known:
                raise ValueError(
                    f"fault spec names unknown node {failure.node!r}; "
                    f"cluster has: {sorted(known)}"
                )

        for failure in spec.node_failures:
            engine.call_at(failure.fail_at, self._fail_node, failure,
                           priority=SimulationEngine.PRIORITY_FAULT)
            if failure.recover_at is not None:
                engine.call_at(failure.recover_at, self._recover_node, failure,
                               priority=SimulationEngine.PRIORITY_FAULT)

        if spec.crash_probability > 0.0:
            self._crash_rng = rng.stream("faults:crash")
            self._crash_functions = (set(spec.crash_functions)
                                     if spec.crash_functions is not None else None)
            controller.set_dispatch_interceptor(self._intercept_dispatch)

        if spec.cold_start is not None:
            cluster.cold_start_sampler = spec.cold_start.build(
                rng.stream("faults:coldstart")
            )

        # recovery detection: every container warm-up may close open records
        cluster.on_container_warm(self._check_recovery)

    # ------------------------------------------------------------------
    # Node failure / recovery events
    # ------------------------------------------------------------------
    def _fail_node(self, failure: NodeFailureSpec) -> None:
        """Engine callback: take the node down and drive the failure semantics."""
        now = self.engine.now
        node = self.cluster.node(failure.node)
        assert node is not None  # validated at construction
        if node.failed:  # pragma: no cover - spec validation rejects overlap
            return
        # capture pre-failure warm counts for recovery detection; only
        # functions that actually lose warm capacity constrain recovery
        lost_warm: Dict[str, int] = {}
        for container in node.containers:
            if container.state is ContainerState.WARM:
                lost_warm[container.function_name] = (
                    lost_warm.get(container.function_name, 0) + 1
                )
        warm_targets = {
            name: len(self.cluster.warm_containers_of(name))
            for name in lost_warm
        }
        containers_lost = len(node.containers)

        interrupted, salvaged = self.cluster.fail_node(failure.node)
        self.metrics.increment("node_failures")
        if interrupted:
            self.metrics.increment("failed_requests", len(interrupted))
        if salvaged:
            self.metrics.increment("requeued_requests", len(salvaged))
        self.availability.record_capacity(
            now, self.cluster.total_cpu, self.cluster.configured_cpu
        )
        record = RecoveryRecord(
            node=failure.node,
            fail_at=now,
            recover_at=failure.recover_at,
            containers_lost=containers_lost,
            warm_targets=warm_targets,
        )
        if not warm_targets:  # no warm capacity lost: service never degraded
            record.recovery_time = 0.0
        self.availability.open_record(record)
        self.controller.on_node_failed(failure.node, salvaged)

    def _recover_node(self, failure: NodeFailureSpec) -> None:
        """Engine callback: bring the node back and let the controller rebalance."""
        node = self.cluster.node(failure.node)
        if node is None or not node.failed:  # pragma: no cover - defensive
            return
        self.cluster.recover_node(failure.node)
        self.metrics.increment("node_recoveries")
        self.availability.record_capacity(
            self.engine.now, self.cluster.total_cpu, self.cluster.configured_cpu
        )
        self.controller.on_node_recovered(failure.node)

    def _check_recovery(self, container: Container) -> None:
        """Warm-up hook: close recovery records whose service is restored."""
        open_records = self.availability.open_records()
        if not open_records:
            return
        now = self.engine.now
        for record in open_records:
            restored = all(
                len(self.cluster.warm_containers_of(name)) >= target
                for name, target in record.warm_targets.items()
            )
            if restored:
                record.recovery_time = now - record.fail_at

    # ------------------------------------------------------------------
    # Crash-on-dispatch
    # ------------------------------------------------------------------
    def crash_decision(self, function_name: str) -> bool:
        """Draw the crash-on-dispatch decision for one dispatch.

        One uniform draw per (non-filtered) dispatch keeps the stream
        consumption a pure function of the (deterministic) dispatch
        order — which is exactly why the columnar data plane calls this
        at every dispatch it performs in-kernel: the ``faults:crash``
        stream advances identically on both data planes.  Functions
        outside ``crash_functions`` never draw.
        """
        if (self._crash_functions is not None
                and function_name not in self._crash_functions):
            return False
        return float(self._crash_rng.random()) < self.spec.crash_probability

    def apply_crash(self, request: Request, container: Container) -> None:
        """Execute a confirmed crash: fail the request, evict, re-provision.

        The dispatched request fails — it reached a dying container —
        the container is evicted (its queued requests are salvaged), and
        the controller immediately re-provisions.
        """
        now = self.engine.now
        request.mark_dropped(now)
        interrupted, salvaged = self.cluster.evict_container(container.container_id)
        self.metrics.increment("container_crashes")
        self.metrics.increment("failed_requests", 1 + len(interrupted))
        if salvaged:
            self.metrics.increment("requeued_requests", len(salvaged))
        self.controller.on_container_crashed(container, salvaged)

    def _intercept_dispatch(self, request: Request, container: Container) -> bool:
        """Dispatcher interceptor: crash the container with the specced probability.

        Returns ``False`` to tell the dispatcher the request was
        disposed of, ``True`` to let the dispatch proceed.
        """
        if not self.crash_decision(request.function_name):
            return True
        self.apply_crash(request, container)
        return False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, duration: float) -> Dict[str, Any]:
        """The ``faults`` group of the scenario results envelope.

        ``duration`` bounds the availability integral (the workload
        horizon, not the drain tail).  All values are plain JSON types
        and a pure function of the run, so results stay byte-stable.
        """
        counters = self.metrics.counters
        completions = counters.get("completions", 0)
        failed = counters.get("failed_requests", 0)
        drops = counters.get("drops", 0)
        served_or_lost = completions + failed + drops
        request_availability = (
            completions / served_or_lost if served_or_lost else 1.0
        )
        report: Dict[str, Any] = {
            "capacity_availability": self.availability.mean_availability(duration),
            "request_availability": request_availability,
            "node_failures": counters.get("node_failures", 0),
            "node_recoveries": counters.get("node_recoveries", 0),
            "container_crashes": counters.get("container_crashes", 0),
            "failed_requests": failed,
            "requeued_requests": counters.get("requeued_requests", 0),
        }
        report.update(self.availability.as_dict())
        return report


__all__ = ["FaultInjector"]
