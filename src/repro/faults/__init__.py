"""Fault injection: deterministic node churn, container crashes, cold-start jitter.

The specs (:class:`FaultSpec` and friends) are plain serialisable data
carried on a :class:`~repro.scenarios.spec.ScenarioSpec`; the
:class:`FaultInjector` arms them against a live simulation stack.  See
:mod:`repro.faults.spec` for the failure semantics and the determinism
contract.
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    ColdStartSpec,
    FaultSpec,
    NodeFailureSpec,
    SiteBlackoutSpec,
    WanPartitionSpec,
    node_outage,
    site_blackout,
    wan_partition,
)

__all__ = [
    "ColdStartSpec",
    "FaultInjector",
    "FaultSpec",
    "NodeFailureSpec",
    "SiteBlackoutSpec",
    "WanPartitionSpec",
    "node_outage",
    "site_blackout",
    "wan_partition",
]
