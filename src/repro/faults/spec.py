"""Declarative fault schedules: what goes wrong, and when.

A :class:`FaultSpec` describes every failure a scenario injects into the
simulated cluster — as *data*, exactly like the rest of the scenario
layer (:mod:`repro.scenarios.spec`): plain frozen dataclasses, full
validation on construction, and an exact ``from_dict(spec.to_dict())``
JSON round-trip.  The live machinery that turns a spec into engine
events is :class:`repro.faults.injector.FaultInjector`.

Three fault families are modelled:

* **Node failures** (:class:`NodeFailureSpec`) — a worker node crashes
  at an explicit simulation time and (optionally) recovers later.  All
  containers on the node are evicted: the request each was *running* is
  failed, while requests still *queued* at its FCFS queues survive and
  are requeued to the controller's shared per-function queues.
* **Container crash-on-dispatch** — with probability
  ``crash_probability`` a container crashes at the moment the dispatcher
  hands it a request (modelling OOM-killed or segfaulting function
  processes).  The dispatched request fails; the container's queued
  requests are requeued.
* **Cold-start latency distributions** (:class:`ColdStartSpec`) — the
  constant ``ClusterConfig.cold_start_latency`` is replaced by a
  per-container random draw, exposing the controller to realistic
  provisioning jitter.

Determinism contract
--------------------
Fault schedules never break seed-stability: node events fire at the
explicit times in the spec, and both the crash and cold-start draws come
from dedicated :class:`~repro.sim.rng.RngStreams` streams
(``"faults:crash"`` and ``"faults:coldstart"``), consumed in event
order.  A run with a ``FaultSpec`` is therefore a pure function of
``(scenario, seed)``, exactly like a healthy run — the metamorphic
tests in ``tests/test_faults.py`` pin this.

An *empty* fault spec (no failures, zero crash probability, no
cold-start override) is indistinguishable from no fault spec at all:
:class:`~repro.scenarios.spec.ScenarioSpec` normalises it to ``None``,
so the results JSON is byte-identical to the healthy scenario's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Valid ``kind`` values for :class:`ColdStartSpec` and their required params.
_COLD_START_KINDS: Dict[str, Tuple[str, ...]] = {
    "constant": ("latency",),
    "uniform": ("low", "high"),
    "lognormal": ("mu", "sigma"),
}


@dataclass(frozen=True)
class NodeFailureSpec:
    """One scheduled node failure (and optional recovery).

    Attributes
    ----------
    node:
        Name of the node that fails (``"node-0"``, ``"node-1"``, ... for
        config-built clusters).  Unknown names fail loudly when the
        injector attaches to the cluster, not silently at runtime.
    fail_at:
        Simulation time of the failure, in seconds.
    recover_at:
        Simulation time the node comes back (empty, at full capacity),
        or ``None`` for a permanent failure.
    """

    node: str
    fail_at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the node name and the failure/recovery timestamps."""
        if not self.node:
            raise ValueError("node name must be non-empty")
        if not 0.0 <= self.fail_at < math.inf:
            raise ValueError(f"fail_at must be finite and non-negative, got {self.fail_at}")
        if self.recover_at is not None and not self.fail_at < self.recover_at < math.inf:
            raise ValueError(
                f"recover_at ({self.recover_at}) must be after fail_at ({self.fail_at})"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view."""
        return {"node": self.node, "fail_at": self.fail_at, "recover_at": self.recover_at}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeFailureSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            node=data["node"],
            fail_at=float(data["fail_at"]),
            recover_at=(float(data["recover_at"])
                        if data.get("recover_at") is not None else None),
        )


@dataclass(frozen=True)
class SiteBlackoutSpec:
    """One scheduled whole-site blackout (and optional rejoin).

    A blackout takes *every* node of a federated site down at once: all
    running requests on the site fail, queued-but-undispatched requests
    are salvaged and **parked at the federation level** until the site
    rejoins (requeue-at-head on recovery).  While dark, the global
    router treats the site as absent.

    Attributes
    ----------
    site:
        Name of the federated site that goes dark (must exist in the
        scenario's :class:`~repro.federation.spec.FederationSpec`).
    fail_at:
        Simulation time of the blackout, in seconds.
    recover_at:
        Simulation time the site rejoins, or ``None`` for permanent loss.
    rejoin_nodes:
        Number of nodes the site rejoins with (``None`` = all of them).
        A site may come back *smaller* than it left — this is exactly
        the case the site-scoped
        :class:`~repro.metrics.availability.AvailabilityTracker` mode
        exists for: warm-capacity recovery targets are clamped to the
        rejoined capacity instead of dangling forever.
    """

    site: str
    fail_at: float
    recover_at: Optional[float] = None
    rejoin_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate the site name, timestamps, and rejoin node count."""
        if not self.site:
            raise ValueError("site name must be non-empty")
        if not 0.0 <= self.fail_at < math.inf:
            raise ValueError(f"fail_at must be finite and non-negative, got {self.fail_at}")
        if self.recover_at is not None and not self.fail_at < self.recover_at < math.inf:
            raise ValueError(
                f"recover_at ({self.recover_at}) must be after fail_at ({self.fail_at})"
            )
        if self.rejoin_nodes is not None:
            if self.recover_at is None:
                raise ValueError("rejoin_nodes requires recover_at (a rejoin time)")
            if int(self.rejoin_nodes) < 1:
                raise ValueError(f"rejoin_nodes must be >= 1, got {self.rejoin_nodes}")
            object.__setattr__(self, "rejoin_nodes", int(self.rejoin_nodes))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view."""
        return {
            "site": self.site,
            "fail_at": self.fail_at,
            "recover_at": self.recover_at,
            "rejoin_nodes": self.rejoin_nodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SiteBlackoutSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            site=data["site"],
            fail_at=float(data["fail_at"]),
            recover_at=(float(data["recover_at"])
                        if data.get("recover_at") is not None else None),
            rejoin_nodes=(int(data["rejoin_nodes"])
                          if data.get("rejoin_nodes") is not None else None),
        )


@dataclass(frozen=True)
class WanPartitionSpec:
    """One scheduled WAN partition of a federated site.

    A partition is *not* a blackout: the global router loses sight of
    the site (it stops scoring it and redirects around it), but the
    site's **local control loop keeps running** — locally-originating
    arrivals are still dispatched by the site's own
    :class:`~repro.core.policy.ControlPolicy`, containers stay warm, and
    requests complete.  On heal, the site's metrics envelope merges back
    into the federation aggregate byte-deterministically.

    Attributes
    ----------
    site:
        Name of the partitioned site.
    start_at:
        Simulation time the partition starts, in seconds.
    heal_at:
        Simulation time the partition heals, or ``None`` if it never does.
    """

    site: str
    start_at: float
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the site name and the partition window timestamps."""
        if not self.site:
            raise ValueError("site name must be non-empty")
        if not 0.0 <= self.start_at < math.inf:
            raise ValueError(f"start_at must be finite and non-negative, got {self.start_at}")
        if self.heal_at is not None and not self.start_at < self.heal_at < math.inf:
            raise ValueError(
                f"heal_at ({self.heal_at}) must be after start_at ({self.start_at})"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view."""
        return {"site": self.site, "start_at": self.start_at, "heal_at": self.heal_at}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WanPartitionSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            site=data["site"],
            start_at=float(data["start_at"]),
            heal_at=(float(data["heal_at"])
                     if data.get("heal_at") is not None else None),
        )


def _validate_windows(kind: str, windows_by_key: Dict[str, list],
                      start_of: Callable[[Any], float],
                      end_of: Callable[[Any], Optional[float]]) -> None:
    """Reject overlapping or post-permanent failure windows per key.

    Shared by node failures, site blackouts, and WAN partitions: within
    one node/site, windows must be disjoint and nothing may follow a
    permanent (open-ended) window.
    """
    for key, windows in windows_by_key.items():
        windows.sort(key=start_of)
        for earlier, later in zip(windows, windows[1:]):
            if end_of(earlier) is None:
                raise ValueError(
                    f"{kind} {key!r}: permanent window at t={start_of(earlier)} "
                    f"cannot be followed by another window"
                )
            if start_of(later) < end_of(earlier):
                raise ValueError(
                    f"{kind} {key!r}: windows overlap "
                    f"([{start_of(earlier)}, {end_of(earlier)}] and "
                    f"[{start_of(later)}, {end_of(later)}])"
                )


@dataclass(frozen=True)
class ColdStartSpec:
    """A cold-start latency distribution replacing the constant config value.

    ``kind`` selects the family; ``params`` carries its arguments:

    * ``"constant"`` — ``{"latency": s}`` (useful to override the
      cluster config without randomness);
    * ``"uniform"`` — ``{"low": s, "high": s}``;
    * ``"lognormal"`` — ``{"mu": m, "sigma": s}`` of the underlying
      normal (median latency ``exp(mu)`` seconds), the classic
      heavy-tailed shape of real container provisioning.
    """

    kind: str
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate the kind, its required params, and their values."""
        if self.kind not in _COLD_START_KINDS:
            raise ValueError(
                f"unknown cold-start kind {self.kind!r}; valid: {sorted(_COLD_START_KINDS)}"
            )
        missing = [key for key in _COLD_START_KINDS[self.kind] if key not in self.params]
        if missing:
            raise ValueError(f"cold-start kind {self.kind!r} missing params: {missing}")
        params = {key: float(value) for key, value in self.params.items()}
        if self.kind == "constant" and params["latency"] < 0:
            raise ValueError("constant cold-start latency must be non-negative")
        if self.kind == "uniform" and not 0 <= params["low"] <= params["high"]:
            raise ValueError("uniform cold-start needs 0 <= low <= high")
        if self.kind == "lognormal" and params["sigma"] < 0:
            raise ValueError("lognormal sigma must be non-negative")
        object.__setattr__(self, "params", params)

    def build(self, rng: np.random.Generator) -> Callable[[], float]:
        """A sampler drawing one cold-start latency per call from ``rng``."""
        p = dict(self.params)
        if self.kind == "constant":
            latency = p["latency"]
            return lambda: latency
        if self.kind == "uniform":
            low, high = p["low"], p["high"]
            return lambda: float(rng.uniform(low, high))
        mu, sigma = p["mu"], p["sigma"]
        return lambda: float(rng.lognormal(mean=mu, sigma=sigma))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ColdStartSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


@dataclass(frozen=True)
class FaultSpec:
    """The complete fault schedule of one scenario.

    Attributes
    ----------
    node_failures:
        Scheduled node failures/recoveries, fired as engine events at
        :data:`~repro.sim.engine.SimulationEngine.PRIORITY_FAULT`.
    crash_probability:
        Per-dispatch probability that the chosen container crashes
        instead of accepting the request, in ``[0, 1)``.
    crash_functions:
        Restrict crash-on-dispatch to these functions (``None`` = all).
    cold_start:
        Optional cold-start latency distribution replacing the cluster
        config's constant.
    site_blackouts:
        Scheduled whole-site blackouts (federated scenarios only).
    wan_partitions:
        Scheduled WAN partitions (federated scenarios only).
    """

    node_failures: Tuple[NodeFailureSpec, ...] = ()
    crash_probability: float = 0.0
    crash_functions: Optional[Tuple[str, ...]] = None
    cold_start: Optional[ColdStartSpec] = None
    site_blackouts: Tuple[SiteBlackoutSpec, ...] = ()
    wan_partitions: Tuple[WanPartitionSpec, ...] = ()

    def __post_init__(self) -> None:
        """Validate the crash probability and freeze the collections.

        Per-node failure windows must be disjoint and ordered: a node
        cannot fail while already down, and nothing can follow a
        permanent (``recover_at=None``) failure.  Overlap would make the
        recovery event of one window revive a node another window still
        holds down — a silent availability-accounting error — so it is a
        spec bug and fails loudly here.
        """
        if not 0.0 <= self.crash_probability < 1.0:
            raise ValueError("crash_probability must be in [0, 1)")
        failures = tuple(
            f if isinstance(f, NodeFailureSpec) else NodeFailureSpec.from_dict(f)
            for f in self.node_failures
        )
        by_node: Dict[str, list] = {}
        for failure in failures:
            by_node.setdefault(failure.node, []).append(failure)
        for node, windows in by_node.items():
            windows.sort(key=lambda f: f.fail_at)
            for earlier, later in zip(windows, windows[1:]):
                if earlier.recover_at is None:
                    raise ValueError(
                        f"node {node!r}: permanent failure at t={earlier.fail_at} "
                        f"cannot be followed by another failure window"
                    )
                if later.fail_at < earlier.recover_at:
                    raise ValueError(
                        f"node {node!r}: failure windows overlap "
                        f"([{earlier.fail_at}, {earlier.recover_at}] and "
                        f"[{later.fail_at}, {later.recover_at}])"
                    )
        object.__setattr__(self, "node_failures", failures)
        if self.crash_functions is not None:
            object.__setattr__(self, "crash_functions", tuple(self.crash_functions))
        blackouts = tuple(
            b if isinstance(b, SiteBlackoutSpec) else SiteBlackoutSpec.from_dict(b)
            for b in self.site_blackouts
        )
        by_site: Dict[str, list] = {}
        for blackout in blackouts:
            by_site.setdefault(blackout.site, []).append(blackout)
        _validate_windows("site blackout", by_site,
                          lambda b: b.fail_at, lambda b: b.recover_at)
        object.__setattr__(self, "site_blackouts", blackouts)
        partitions = tuple(
            p if isinstance(p, WanPartitionSpec) else WanPartitionSpec.from_dict(p)
            for p in self.wan_partitions
        )
        by_site = {}
        for partition in partitions:
            by_site.setdefault(partition.site, []).append(partition)
        _validate_windows("wan partition", by_site,
                          lambda p: p.start_at, lambda p: p.heal_at)
        object.__setattr__(self, "wan_partitions", partitions)

    def is_empty(self) -> bool:
        """Whether this spec injects nothing at all.

        Empty specs are normalised to ``None`` by
        :class:`~repro.scenarios.spec.ScenarioSpec`, which is what makes
        a faults-disabled run byte-identical to the healthy scenario.
        """
        return (not self.node_failures
                and self.crash_probability == 0.0
                and self.cold_start is None
                and not self.site_blackouts
                and not self.wan_partitions)

    def has_site_faults(self) -> bool:
        """Whether this spec contains federation-level (site) faults."""
        return bool(self.site_blackouts or self.wan_partitions)

    def has_node_faults(self) -> bool:
        """Whether this spec contains single-cluster (node/crash/cold) faults."""
        return (bool(self.node_failures)
                or self.crash_probability != 0.0
                or self.cold_start is not None)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view of the whole fault schedule.

        The federation keys are emitted only when non-empty so every
        pre-federation spec — and therefore every recorded envelope —
        keeps its exact historical bytes.
        """
        data = {
            "node_failures": [f.to_dict() for f in self.node_failures],
            "crash_probability": self.crash_probability,
            "crash_functions": (list(self.crash_functions)
                                if self.crash_functions is not None else None),
            "cold_start": self.cold_start.to_dict() if self.cold_start is not None else None,
        }
        if self.site_blackouts:
            data["site_blackouts"] = [b.to_dict() for b in self.site_blackouts]
        if self.wan_partitions:
            data["wan_partitions"] = [p.to_dict() for p in self.wan_partitions]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild (and re-validate) a fault schedule from :meth:`to_dict` output."""
        cold_start = data.get("cold_start")
        crash_functions = data.get("crash_functions")
        return cls(
            node_failures=tuple(
                NodeFailureSpec.from_dict(f) for f in data.get("node_failures", ())
            ),
            crash_probability=float(data.get("crash_probability", 0.0)),
            crash_functions=(tuple(crash_functions)
                             if crash_functions is not None else None),
            cold_start=(ColdStartSpec.from_dict(cold_start)
                        if cold_start is not None else None),
            site_blackouts=tuple(
                SiteBlackoutSpec.from_dict(b) for b in data.get("site_blackouts", ())
            ),
            wan_partitions=tuple(
                WanPartitionSpec.from_dict(p) for p in data.get("wan_partitions", ())
            ),
        )


def node_outage(node: str, fail_at: float, recover_at: Optional[float],
                *more: Sequence[Any]) -> FaultSpec:
    """Convenience builder: one (or more) node failure/recovery windows.

    ``more`` takes additional ``(node, fail_at, recover_at)`` triples::

        node_outage("node-1", 120.0, 240.0)
        node_outage("node-0", 60.0, 120.0, ("node-1", 180.0, 240.0))
    """
    failures = [NodeFailureSpec(node, fail_at, recover_at)]
    for entry in more:
        failures.append(NodeFailureSpec(*entry))
    return FaultSpec(node_failures=tuple(failures))


def site_blackout(site: str, fail_at: float, recover_at: Optional[float],
                  rejoin_nodes: Optional[int] = None) -> FaultSpec:
    """Convenience builder: one whole-site blackout window."""
    return FaultSpec(site_blackouts=(
        SiteBlackoutSpec(site, fail_at, recover_at, rejoin_nodes),
    ))


def wan_partition(site: str, start_at: float,
                  heal_at: Optional[float]) -> FaultSpec:
    """Convenience builder: one WAN-partition window."""
    return FaultSpec(wan_partitions=(WanPartitionSpec(site, start_at, heal_at),))


__all__ = [
    "NodeFailureSpec",
    "ColdStartSpec",
    "FaultSpec",
    "SiteBlackoutSpec",
    "WanPartitionSpec",
    "node_outage",
    "site_blackout",
    "wan_partition",
]
