"""Concurrency-targeted reactive autoscaler (Knative-style baseline).

This is the model-free alternative LaSS's queueing model is implicitly
compared against: instead of solving for the container count that meets
a waiting-time percentile, the reactive scaler keeps the observed
per-container concurrency near a target.  It reuses LaSS's data path
(WRR dispatch) but replaces the sizing model, which makes it a clean
ablation of the paper's "model-driven" contribution.

Registered as ``policy="reactive"``: under fault injection the salvaged
requests rejoin the shared queue (the base-class default) and the next
evaluation tick re-provisions toward the concurrency target — the
model-free analogue of LaSS's immediate reactive recovery pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import math

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container
from repro.core.dispatch import SharedQueueDispatcher
from repro.core.policy import (
    ControlPolicy,
    PolicyContext,
    config_from_params,
    register_policy,
)
from repro.metrics.collector import EpochSnapshot, FunctionEpochStats, MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request


@dataclass
class ReactiveControllerConfig:
    """Parameters of the concurrency autoscaler."""

    #: desired average in-flight requests per container
    target_concurrency: float = 1.0
    #: how often the scaler evaluates (seconds)
    evaluation_interval: float = 5.0
    #: smoothing factor for the observed concurrency
    smoothing: float = 0.6
    #: never exceed this many containers per function
    max_containers: int = 1000

    def __post_init__(self) -> None:
        """Validate the configuration parameters."""
        if self.target_concurrency <= 0:
            raise ValueError("target_concurrency must be positive")
        if self.evaluation_interval <= 0:
            raise ValueError("evaluation_interval must be positive")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")


class ConcurrencyAutoscaler(ControlPolicy):
    """Reactive controller: scale to ``ceil(concurrency / target)`` containers."""

    name = "reactive"

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        config: Optional[ReactiveControllerConfig] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        """Wire the autoscaler to the engine, cluster, and metrics sink."""
        self.engine = engine
        self.cluster = cluster
        self.config = config or ReactiveControllerConfig()
        self.metrics = metrics or MetricsCollector()
        self.dispatcher = SharedQueueDispatcher(engine, on_complete=self._on_request_complete)
        self.dispatcher.attach_cluster(cluster)
        self._smoothed_concurrency: Dict[str, float] = {}
        self._started = False
        cluster.on_container_warm(self._on_container_warm)

    def start(self) -> None:
        """Begin the periodic evaluation loop."""
        if self._started:
            return
        self._started = True
        self.engine.schedule(
            self.config.evaluation_interval, self._evaluate,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    # ------------------------------------------------------------------
    # Data path (same WRR dispatch as LaSS)
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> None:
        """Route a request to an idle container or queue it; cold-start the first container."""
        self.metrics.record_request(request)
        started = self.dispatcher.submit(request)
        if not started and not self.cluster.containers_of(request.function_name):
            self._create(request.function_name, 1)

    def _on_container_warm(self, container: Container) -> None:
        """A container finished cold start: drain queued requests onto it."""
        self.dispatcher.drain(container.function_name)

    def _on_request_complete(self, request: Request, container: Container) -> None:
        """Completion callback: record the completion in the metrics."""
        self.metrics.record_completion(request)

    def columnar_plan(self):
        """The reactive data path, described for the columnar kernel.

        Mirrors :meth:`dispatch`: no per-arrival estimator state, create
        one container when a request queues against an empty function,
        completions are pure metrics.
        """
        from repro.sim.columnar import ColumnarPlan

        def create_on_empty(name: str) -> None:
            """Bootstrap one container for a function that has none."""
            self._create(name, 1)

        return ColumnarPlan(
            dispatcher=self.dispatcher,
            collector=self.metrics,
            create_on_empty=create_on_empty,
        )

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def run_epoch(self) -> None:
        """One synchronous evaluation pass (the policy-contract entry point)."""
        self._evaluate_once()

    def _evaluate(self) -> None:
        """Periodic tick: evaluate, then reschedule the next tick."""
        self._evaluate_once()
        self.engine.schedule(
            self.config.evaluation_interval, self._evaluate,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    def _evaluate_once(self) -> None:
        """One evaluation step: compare observed concurrency to the target and scale."""
        for deployment in self.cluster.deployments:
            name = deployment.name
            live = self.cluster.containers_of(name, include_draining=False)
            in_flight = sum(c.in_flight for c in live) + self.dispatcher.queue_length(name)
            previous = self._smoothed_concurrency.get(name, float(in_flight))
            smoothed = (
                self.config.smoothing * in_flight + (1 - self.config.smoothing) * previous
            )
            self._smoothed_concurrency[name] = smoothed
            desired = min(
                self.config.max_containers,
                max(0, math.ceil(smoothed / self.config.target_concurrency)),
            )
            if desired > len(live):
                self._create(name, desired - len(live))
            elif desired < len(live):
                victims = sorted(live, key=lambda c: c.in_flight)[: len(live) - desired]
                for victim in victims:
                    if victim.in_flight == 0:
                        self.cluster.terminate_container(victim.container_id)
                        self.metrics.increment("terminations")
        self._snapshot()

    def _create(self, name: str, count: int) -> None:
        """Create up to ``count`` new containers, capacity permitting."""
        deployment = self.cluster.deployment(name)
        for _ in range(count):
            node = self.cluster.find_node_for(deployment.cpu, deployment.memory_mb)
            if node is None:
                return
            self.cluster.create_container(name, node=node)
            self.metrics.increment("creations")

    def _snapshot(self) -> None:
        """Record a per-function epoch snapshot for the timeline metrics."""
        functions: Dict[str, FunctionEpochStats] = {}
        for deployment in self.cluster.deployments:
            live = self.cluster.containers_of(deployment.name)
            functions[deployment.name] = FunctionEpochStats(
                function_name=deployment.name,
                containers=len(live),
                cpu=sum(c.current_cpu for c in live),
                desired_containers=len(live),
                arrival_rate_estimate=self._smoothed_concurrency.get(deployment.name, 0.0),
                service_rate_estimate=0.0,
            )
        self.metrics.record_epoch(
            EpochSnapshot(
                time=self.engine.now,
                overloaded=False,
                total_cpu=self.cluster.total_cpu,
                allocated_cpu=self.cluster.cpu_allocated,
                functions=functions,
            )
        )


def _validate_reactive_params(params) -> None:
    """Eager params check: must construct a valid config."""
    config_from_params(ReactiveControllerConfig, "reactive", params)


@register_policy(
    "reactive",
    "Knative-style reactive scaler: track a per-container concurrency target",
    validate_params=_validate_reactive_params,
)
def _build_reactive(context: PolicyContext, params: Dict[str, Any]) -> ConcurrencyAutoscaler:
    """Registry factory for the reactive concurrency autoscaler."""
    return ConcurrencyAutoscaler(
        engine=context.engine, cluster=context.cluster,
        config=config_from_params(ReactiveControllerConfig, "reactive", params),
        metrics=context.metrics,
    )


__all__ = ["ConcurrencyAutoscaler", "ReactiveControllerConfig"]
