"""Built-in control-plane policies, registered with the policy registry.

Importing this package registers every built-in policy (the registry in
:mod:`repro.core.policy` imports it lazily on first lookup):

========== ====================================================== ==============
policy     behaviour                                              paper role
========== ====================================================== ==============
``lass``   model-driven sizing + fair share + reclamation         the system
``openwhisk`` memory-only sharding-pool packing, scale/request    §6.6 baseline
``reactive`` Knative-style concurrency-target scaler              model-free ablation
``static`` fixed per-function allocation, no autoscaling          lower bound
``hybrid`` reactive scale-up with an M/M/c floor on scale-down    extension
``noop``   no control loop at all (Figures 3/4 fixed-allocation)  measurement atom
========== ====================================================== ==============

The historical import path :mod:`repro.baselines` still works as a thin
re-export shim over this package.
"""

from repro.core.controller import LassController
from repro.core.policy import PolicyContext, register_policy

# importing the submodules registers their factories
from repro.policies.hybrid import HybridPolicy, HybridPolicyConfig
from repro.policies.noop import NoOpPolicy
from repro.policies.openwhisk import OpenWhiskConfig, VanillaOpenWhiskController
from repro.policies.reactive import ConcurrencyAutoscaler, ReactiveControllerConfig
from repro.policies.static_allocation import StaticAllocationController


def _no_lass_params(params) -> None:
    """Eager params check: LaSS is configured via the ControllerSpec fields."""
    if params:
        raise ValueError(
            "policy 'lass' takes no policy_params — configure it through the "
            f"ControllerSpec/ControllerConfig fields; got {sorted(params)}"
        )


@register_policy(
    "lass",
    "the paper's control plane: model-driven sizing, fair share, reclamation",
    validate_params=_no_lass_params,
)
def _build_lass(context: PolicyContext, params) -> LassController:
    """Registry factory for the LaSS controller."""
    _no_lass_params(params)
    return LassController(
        engine=context.engine,
        cluster=context.cluster,
        config=context.config,
        scheduling_tree=context.scheduling_tree,
        metrics=context.metrics,
        service_profiles=dict(context.service_profiles),
        default_service_rates=dict(context.default_service_rates),
    )


__all__ = [
    "ConcurrencyAutoscaler",
    "HybridPolicy",
    "HybridPolicyConfig",
    "LassController",
    "NoOpPolicy",
    "OpenWhiskConfig",
    "ReactiveControllerConfig",
    "StaticAllocationController",
    "VanillaOpenWhiskController",
]
