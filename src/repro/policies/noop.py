"""The no-op policy: LaSS's data path with the control loop removed.

``run_fixed_allocation`` — the Figures 3/4 model-validation atom — used
to fake "no control loop" by giving :class:`LassController` an epoch
longer than the experiment.  :class:`NoOpPolicy` makes that explicit: it
is exactly the shared-queue WRR data path (dispatch to an idle
container, FCFS queue otherwise, drain on warm-up/completion) with *no*
scaling of any kind — containers are whatever the harness created
(``warm_start`` prewarming, or explicit ``create_container`` calls).

The event stream it produces is byte-identical to the disabled-LaSS
construction it replaces: both attach the same
:class:`~repro.core.dispatch.SharedQueueDispatcher` to the cluster,
record arrivals/completions into the same collector, and never schedule
a control event.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container
from repro.core.dispatch import SharedQueueDispatcher
from repro.core.policy import ControlPolicy, PolicyContext, register_policy
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request


class NoOpPolicy(ControlPolicy):
    """Pure dispatch over a fixed fleet: no control loop, no scaling."""

    name = "noop"

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        """Attach the shared-queue data path to the cluster."""
        self.engine = engine
        self.cluster = cluster
        self.metrics = metrics or MetricsCollector()
        self.dispatcher = SharedQueueDispatcher(engine, on_complete=self._on_request_complete)
        self.dispatcher.attach_cluster(cluster)
        cluster.on_container_warm(self._on_container_warm)

    def start(self) -> None:
        """Nothing to start: the policy schedules no control events."""

    def dispatch(self, request: Request) -> None:
        """Record the arrival and hand it to the shared-queue dispatcher."""
        self.metrics.record_request(request)
        self.dispatcher.submit(request)

    def _on_container_warm(self, container: Container) -> None:
        """A container finished cold start: drain its function's queue onto it."""
        self.dispatcher.drain(container.function_name)

    def _on_request_complete(self, request: Request, container: Container) -> None:
        """Completion callback: record the completion in the metrics."""
        self.metrics.record_completion(request)

    def columnar_plan(self):
        """Pure dispatch + metrics: the minimal columnar plan."""
        from repro.sim.columnar import ColumnarPlan

        return ColumnarPlan(dispatcher=self.dispatcher, collector=self.metrics)


def _no_params(params) -> None:
    """Eager params check: the no-op policy is parameterless."""
    if params:
        raise ValueError(f"policy 'noop' takes no policy_params; got {sorted(params)}")


@register_policy(
    "noop",
    "no control loop: WRR dispatch over whatever containers exist",
    validate_params=_no_params,
)
def _build_noop(context: PolicyContext, params: Dict[str, Any]) -> NoOpPolicy:
    """Registry factory for the no-op policy (takes no params)."""
    _no_params(params)
    return NoOpPolicy(engine=context.engine, cluster=context.cluster,
                      metrics=context.metrics)


__all__ = ["NoOpPolicy"]
