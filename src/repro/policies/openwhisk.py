"""Vanilla OpenWhisk baseline: the sharding-pool load balancer (paper §6.6).

The paper explains the failure mode it observed when running the
two-function overload experiment on unmodified OpenWhisk:

* the sharding-pool load balancer tries to keep different functions on
  different invoker nodes (a "home" invoker per function) to maximise
  container reuse and isolation;
* containers are packed onto invokers based on their *memory*
  requirement only — CPU is ignored;
* when the MobileNet workload starts, its home invoker is quickly
  over-packed with 2-vCPU containers, CPU-overcommitted, and becomes
  unresponsive;
* the controller then shifts the whole workload to the next invoker,
  which suffers the same fate, until every invoker has failed —
  a cascading failure.

This module reproduces that behaviour: scale-per-request concurrency
autoscaling (a new container whenever no idle one exists, limited only
by memory), home-invoker placement, CPU-oblivious packing, and a node
model in which CPU overcommitment beyond a threshold makes the node
unresponsive (its containers stop making progress and it stops
accepting new containers).

Since the unified policy refactor the controller is a registered
:class:`~repro.core.policy.ControlPolicy` (``policy="openwhisk"``): it
runs through the standard :class:`~repro.simulation.SimulationRunner`,
participates in fault-injected scenarios (node failures park the
salvaged requests until capacity reappears; crash-on-dispatch is
intercepted at the single submission choke point), and contributes the
``"openwhisk"`` results group — invoker failures and request drops — to
the scenario envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container, ContainerState
from repro.cluster.node import Node
from repro.core.policy import (
    ControlPolicy,
    PolicyContext,
    config_from_params,
    register_policy,
)
from repro.metrics.collector import EpochSnapshot, FunctionEpochStats, MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request


@dataclass
class OpenWhiskConfig:
    """Parameters of the vanilla-OpenWhisk baseline.

    Attributes
    ----------
    overcommit_failure_factor:
        A node becomes unresponsive once the sum of its containers'
        standard CPU allocations exceeds this multiple of its CPU
        capacity.  The paper's invokers fell over once over-packed with
        MobileNet containers; 1.5 reproduces that promptly on 4-core
        nodes.
    max_concurrency_per_container:
        OpenWhisk runs one activation per container at a time.
    snapshot_interval:
        How often to record utilisation / allocation snapshots.
    """

    overcommit_failure_factor: float = 1.5
    max_concurrency_per_container: int = 1
    snapshot_interval: float = 10.0


class VanillaOpenWhiskController(ControlPolicy):
    """The baseline control plane (data path + naive scaling), no fair share.

    The public surface conforms to :class:`~repro.core.policy.ControlPolicy`
    (``dispatch``, ``start``, fault hooks, a metrics collector) so the
    simulation runner, scenario executor, and fault injector treat it
    exactly like :class:`~repro.core.controller.LassController`.
    """

    name = "openwhisk"

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        config: Optional[OpenWhiskConfig] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        """Wire the baseline controller to the engine, cluster, and metrics sink."""
        self.engine = engine
        self.cluster = cluster
        self.config = config or OpenWhiskConfig()
        self.metrics = metrics or MetricsCollector()
        self._home_invoker: Dict[str, int] = {}
        self._pending: Dict[str, List[Request]] = {}
        self._started = False
        #: crash-on-dispatch hook installed by the fault injector (see
        #: :meth:`set_dispatch_interceptor`); ``None`` on healthy runs
        self.interceptor: Optional[Callable[[Request, Container], bool]] = None
        cluster.on_container_warm(self._on_container_warm)
        for index, deployment in enumerate(cluster.deployments):
            self._home_invoker[deployment.name] = index % len(cluster.nodes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic snapshotting (the baseline has no control epoch)."""
        if self._started:
            return
        self._started = True
        self.engine.schedule(
            self.config.snapshot_interval, self._snapshot_tick,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _submit_to(self, container: Container, request: Request) -> bool:
        """Hand one request to one container — the submission choke point.

        Every dispatch goes through here so the fault injector's
        crash-on-dispatch interceptor sees each one exactly once.
        Returns ``False`` when the interceptor reports a crash (it has
        already disposed of the request and evicted the container).
        """
        interceptor = self.interceptor
        if interceptor is not None and not interceptor(request, container):
            return False
        container.submit(request, self.engine, self._on_request_complete)
        return True

    def set_dispatch_interceptor(
        self, interceptor: Callable[[Request, Container], bool]
    ) -> None:
        """Install the crash-on-dispatch interceptor at the choke point."""
        self.interceptor = interceptor

    def dispatch(self, request: Request) -> None:
        """Handle one arriving invocation the way vanilla OpenWhisk would."""
        self.metrics.record_request(request)
        name = request.function_name
        self._check_node_health()

        container = self._find_idle_container(name)
        if container is not None:
            self._submit_to(container, request)
            return

        # no idle container: try to create one on the home invoker chain
        created = self._create_container(name)
        if created is not None:
            self._submit_to(created, request)
            return

        # no capacity anywhere: queue on the least-loaded responsive container
        candidates = [
            c for c in self.cluster.containers_of(name)
            if c.is_available and not self._node_unresponsive(c)
        ]
        if candidates:
            target = min(candidates, key=lambda c: c.in_flight)
            self._submit_to(target, request)
        else:
            # every invoker hosting this function has failed: the request is lost
            self._pending.setdefault(name, []).append(request)
            request.mark_queued()
            self.metrics.increment("stranded_requests")

    def _find_idle_container(self, name: str) -> Optional[Container]:
        """First available warm container of the function with no in-flight work."""
        for container in self.cluster.containers_of(name):
            if not container.is_available or container.in_flight > 0:
                continue
            node = self._node_of(container)
            if node is not None and node.unresponsive:
                continue
            return container
        return None

    def _create_container(self, name: str) -> Optional[Container]:
        """Memory-only packing starting from the function's home invoker."""
        nodes = self.cluster.nodes
        if not nodes:
            return None
        start = self._home_invoker.get(name, 0)
        deployment = self.cluster.deployment(name)
        for offset in range(len(nodes)):
            node = nodes[(start + offset) % len(nodes)]
            if not node.available:
                # unresponsive (§6.6 cascade) or failed (injected outage)
                continue
            if deployment.memory_mb <= node.memory_free_mb + 1e-9:
                # CPU is deliberately ignored (enforce_cpu=False): this is the
                # over-packing behaviour that triggers the cascade.
                container = self.cluster.create_container(
                    name, node=node, enforce_cpu=False
                )
                self.metrics.increment("creations")
                return container
        return None

    def _on_container_warm(self, container: Container) -> None:
        """A container finished cold start: serve its function's pending requests."""
        container.on_warm_start(self.engine, self._on_request_complete)
        pending = self._pending.get(container.function_name)
        if pending:
            node = self._node_of(container)
            if node is not None and not node.unresponsive:
                while pending and container.in_flight < self.config.max_concurrency_per_container:
                    request = pending.pop(0)
                    # the request was parked in QUEUED state; submit accepts
                    # it as-is.  Routed through the choke point so the
                    # crash-on-dispatch interceptor sees parked re-dispatches
                    # exactly like fresh ones.
                    if not self._submit_to(container, request):
                        break  # the container crashed on dispatch; it is gone

    def _on_request_complete(self, request: Request, container: Container) -> None:
        """Completion callback: count the completion unless the node already failed."""
        node = self._node_of(container)
        if node is not None and node.unresponsive:
            # completions on a failed node do not count: the invoker never
            # reports them back.  (The request is re-marked as dropped.)
            request.status = request.status  # keep state; accounting below
            self.metrics.record_drop()
            return
        self.metrics.record_completion(request)

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    def _check_node_health(self) -> None:
        """Mark CPU-overcommitted nodes unresponsive and stall their work."""
        factor = self.config.overcommit_failure_factor
        for node in self.cluster.nodes:
            if node.unresponsive:
                continue
            standard_cpu = sum(c.standard_cpu for c in node.containers)
            if standard_cpu > factor * node.cpu_capacity + 1e-9:
                node.unresponsive = True
                self.metrics.increment("invoker_failures")
                # containers on a dead invoker stop making progress
                for container in node.containers:
                    if container.state in (ContainerState.WARM, ContainerState.DRAINING):
                        for dropped in container.terminate(self.engine.now):
                            self.metrics.record_drop()

    def failed_nodes(self) -> List[str]:
        """Names of invokers that have become unresponsive."""
        return [n.name for n in self.cluster.nodes if n.unresponsive]

    @property
    def all_invokers_failed(self) -> bool:
        """The cascading-failure end state of §6.6."""
        return all(n.unresponsive for n in self.cluster.nodes)

    def _node_of(self, container: Container) -> Optional[Node]:
        """The node hosting a container (``None`` if it is gone)."""
        return self.cluster.node(container.node_name)

    def _node_unresponsive(self, container: Container) -> bool:
        """Whether the container's hosting node is gone or unresponsive."""
        node = self._node_of(container)
        return node is None or node.unresponsive

    # ------------------------------------------------------------------
    # Fault hooks (injected node failures, distinct from the §6.6 cascade)
    # ------------------------------------------------------------------
    def on_node_failed(self, node_name: str, salvaged: Sequence[Request]) -> None:
        """An injected outage took a node: park the salvaged queued requests.

        Vanilla OpenWhisk has no reactive re-provisioning loop — the
        rescued requests wait in the pending lists until a container of
        their function warms up (which the next arrival's
        scale-per-request creation triggers).
        """
        for request in salvaged:
            self._pending.setdefault(request.function_name, []).append(request)

    def on_node_recovered(self, node_name: str) -> None:
        """An injected outage ended: capacity is back; nothing proactive to do."""

    def on_container_crashed(self, container: Container,
                             salvaged: Sequence[Request]) -> None:
        """A container crashed on dispatch: park its salvaged queued requests."""
        for request in salvaged:
            self._pending.setdefault(request.function_name, []).append(request)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results_extra(self) -> Tuple[str, Dict[str, Any]]:
        """The ``"openwhisk"`` results group: invoker failures and drops."""
        counters = self.metrics.counters
        return (
            "openwhisk",
            {
                "failed_invokers": len(self.failed_nodes()),
                "all_invokers_failed": self.all_invokers_failed,
                "completions": counters.get("completions", 0),
                "arrivals": counters.get("arrivals", 0),
                "drops": counters.get("drops", 0) + counters.get("stranded_requests", 0),
            },
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _snapshot_tick(self) -> None:
        """Periodic tick: check node health and record a per-function epoch snapshot."""
        self._check_node_health()
        functions: Dict[str, FunctionEpochStats] = {}
        for deployment in self.cluster.deployments:
            live = self.cluster.containers_of(deployment.name)
            functions[deployment.name] = FunctionEpochStats(
                function_name=deployment.name,
                containers=len(live),
                cpu=sum(c.current_cpu for c in live),
                desired_containers=len(live),
                arrival_rate_estimate=0.0,
                service_rate_estimate=0.0,
            )
        self.metrics.record_epoch(
            EpochSnapshot(
                time=self.engine.now,
                overloaded=any(n.cpu_overcommitted for n in self.cluster.nodes),
                total_cpu=self.cluster.total_cpu,
                allocated_cpu=min(self.cluster.cpu_allocated, self.cluster.total_cpu),
                functions=functions,
            )
        )
        self.engine.schedule(
            self.config.snapshot_interval, self._snapshot_tick,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )


def _validate_openwhisk_params(params) -> None:
    """Eager params check: must construct a valid config."""
    config_from_params(OpenWhiskConfig, "openwhisk", params)


@register_policy(
    "openwhisk",
    "vanilla OpenWhisk: memory-only sharding-pool packing, scale per request",
    validate_params=_validate_openwhisk_params,
    legacy_workload_rng=True,
)
def _build_openwhisk(context: PolicyContext, params: Dict[str, Any]) -> VanillaOpenWhiskController:
    """Registry factory for the vanilla-OpenWhisk policy."""
    return VanillaOpenWhiskController(
        engine=context.engine, cluster=context.cluster,
        config=config_from_params(OpenWhiskConfig, "openwhisk", params),
        metrics=context.metrics,
    )


__all__ = ["VanillaOpenWhiskController", "OpenWhiskConfig"]
