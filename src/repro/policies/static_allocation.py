"""Static allocation baseline: fixed containers per function, no autoscaling.

Useful as the lower bound in ablation benchmarks: it shows what happens
when capacity is provisioned once (e.g. for the mean load) and the
workload then fluctuates — exactly the situation the paper's
model-driven autoscaler exists to avoid.

Registered as ``policy="static"`` (``policy_params`` must carry the
``allocations`` mapping).  Under fault injection the salvaged requests
rejoin the shared queue and the controller recreates containers toward
its fixed allocation — a statically-provisioned operator would restore
the provisioned capacity, just without any model guiding the count.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container
from repro.core.dispatch import SharedQueueDispatcher
from repro.core.policy import ControlPolicy, PolicyContext, register_policy
from repro.metrics.collector import EpochSnapshot, FunctionEpochStats, MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request


class StaticAllocationController(ControlPolicy):
    """Dispatches with WRR over a fixed, pre-created container allocation.

    Parameters
    ----------
    allocations:
        Function name → number of standard containers to create at start-up.
    """

    name = "static"

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        allocations: Mapping[str, int],
        metrics: Optional[MetricsCollector] = None,
        snapshot_interval: float = 10.0,
    ) -> None:
        """Wire the controller to the engine, cluster, and metrics sink."""
        self.engine = engine
        self.cluster = cluster
        self.allocations = {name: int(count) for name, count in allocations.items()}
        if any(count < 0 for count in self.allocations.values()):
            raise ValueError("allocations must be non-negative")
        self.metrics = metrics or MetricsCollector()
        self.dispatcher = SharedQueueDispatcher(engine, on_complete=self._on_request_complete)
        self.dispatcher.attach_cluster(cluster)
        self.snapshot_interval = float(snapshot_interval)
        self._started = False
        cluster.on_container_warm(self._on_container_warm)

    def start(self) -> None:
        """Create the fixed allocation and begin periodic snapshotting."""
        if self._started:
            return
        self._started = True
        for name, count in self.allocations.items():
            for _ in range(count):
                self.cluster.create_container(name)
                self.metrics.increment("creations")
        self.engine.schedule(
            self.snapshot_interval, self._snapshot_tick,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    def dispatch(self, request: Request) -> None:
        """Route one request to an idle container or queue it (shared FCFS queue)."""
        self.metrics.record_request(request)
        self.dispatcher.submit(request)

    def _on_container_warm(self, container: Container) -> None:
        """A container finished cold start: drain queued requests onto it."""
        self.dispatcher.drain(container.function_name)

    def _on_request_complete(self, request: Request, container: Container) -> None:
        """Completion callback: record the completion in the metrics."""
        self.metrics.record_completion(request)

    def columnar_plan(self):
        """Pure dispatch + metrics over the fixed fleet: the minimal plan."""
        from repro.sim.columnar import ColumnarPlan

        return ColumnarPlan(dispatcher=self.dispatcher, collector=self.metrics)

    # ------------------------------------------------------------------
    # Fault hooks: restore the provisioned allocation
    # ------------------------------------------------------------------
    def _restore_allocation(self) -> None:
        """Recreate containers lost to faults, up to the fixed allocation."""
        for name, count in self.allocations.items():
            missing = count - len(self.cluster.containers_of(name))
            for _ in range(missing):
                deployment = self.cluster.deployment(name)
                node = self.cluster.find_node_for(deployment.cpu, deployment.memory_mb)
                if node is None:
                    break
                self.cluster.create_container(name, node=node)
                self.metrics.increment("creations")

    def on_node_failed(self, node_name: str, salvaged: Sequence[Request]) -> None:
        """Requeue the salvaged requests and re-provision toward the allocation."""
        self._requeue_salvaged(salvaged)
        self._restore_allocation()

    def on_node_recovered(self, node_name: str) -> None:
        """Capacity is back: recreate any containers that would not fit before."""
        self._restore_allocation()

    def on_container_crashed(self, container: Container,
                             salvaged: Sequence[Request]) -> None:
        """Requeue the salvaged requests and replace the crashed container."""
        self._requeue_salvaged(salvaged)
        self._restore_allocation()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _snapshot_tick(self) -> None:
        """Record a per-function epoch snapshot for the timeline metrics."""
        functions: Dict[str, FunctionEpochStats] = {}
        for deployment in self.cluster.deployments:
            live = self.cluster.containers_of(deployment.name)
            functions[deployment.name] = FunctionEpochStats(
                function_name=deployment.name,
                containers=len(live),
                cpu=sum(c.current_cpu for c in live),
                desired_containers=self.allocations.get(deployment.name, 0),
                arrival_rate_estimate=0.0,
                service_rate_estimate=0.0,
            )
        self.metrics.record_epoch(
            EpochSnapshot(
                time=self.engine.now,
                overloaded=False,
                total_cpu=self.cluster.total_cpu,
                allocated_cpu=self.cluster.cpu_allocated,
                functions=functions,
            )
        )
        self.engine.schedule(
            self.snapshot_interval, self._snapshot_tick,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )


def _validate_static_params(params: Mapping[str, Any]) -> None:
    """Eager params check: the static policy needs an ``allocations`` mapping."""
    allocations = params.get("allocations")
    if not isinstance(allocations, Mapping) or not allocations:
        raise ValueError(
            "policy 'static' requires policy_params={'allocations': {function: count}}"
        )
    for name, count in allocations.items():
        integral = (isinstance(count, (int, float)) and not isinstance(count, bool)
                    and float(count) == int(count))
        if not isinstance(name, str) or not integral or count < 0:
            raise ValueError(f"invalid static allocation {name!r}: {count!r}")
    unknown = set(params) - {"allocations", "snapshot_interval"}
    if unknown:
        raise ValueError(f"invalid static policy_params: {sorted(unknown)}")


@register_policy(
    "static",
    "fixed per-function container allocation, no autoscaling",
    validate_params=_validate_static_params,
)
def _build_static(context: PolicyContext, params: Dict[str, Any]) -> StaticAllocationController:
    """Registry factory for the static-allocation policy."""
    _validate_static_params(params)
    return StaticAllocationController(
        engine=context.engine, cluster=context.cluster,
        allocations=dict(params["allocations"]), metrics=context.metrics,
        snapshot_interval=float(params.get("snapshot_interval", 10.0)),
    )


__all__ = ["StaticAllocationController"]
