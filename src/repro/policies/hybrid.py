"""Hybrid model-guided reactive scaler: the registry's extensibility proof.

Neither of the paper's comparison points is quite how production
autoscalers behave: LaSS is purely model-driven (epoch-cadence queueing
solves), the Knative-style baseline purely reactive (track observed
concurrency, no model).  :class:`HybridPolicy` combines them:

* **scale-up is reactive** — every evaluation tick it compares the
  smoothed per-container concurrency to a target, exactly like the
  reactive baseline, so bursts are answered within one tick;
* **scale-down is model-guided** — the M/M/c sizing model (the same
  memoized solver LaSS uses, via
  :class:`~repro.core.allocation.autoscaler.Autoscaler`) computes the
  minimum allocation that still meets the SLO percentile at the current
  estimated arrival rate, and the policy never shrinks below it; a
  patience counter additionally requires several consecutive
  shrink-wanting ticks before any container is released.

The model acts as a *floor*, not a setpoint: the policy reacts like
Knative but cannot be baited into releasing SLO-critical capacity by a
momentary lull — the failure mode the purely reactive baseline exhibits
on staircase workloads.

This policy is deliberately implemented *outside* the core package,
using only the public registry API (:func:`repro.core.policy.register_policy`),
the shared dispatcher, and the public autoscaler — the shape of a
third-party policy contribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container
from repro.core.allocation.autoscaler import Autoscaler
from repro.core.dispatch import SharedQueueDispatcher
from repro.core.estimation.service_time import ServiceTimeProfile
from repro.core.estimation.sliding_window import DualWindowRateEstimator
from repro.core.policy import (
    ControlPolicy,
    PolicyContext,
    config_from_params,
    register_policy,
)
from repro.metrics.collector import EpochSnapshot, FunctionEpochStats, MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request


@dataclass
class HybridPolicyConfig:
    """Parameters of the hybrid model-guided reactive scaler."""

    #: desired average in-flight requests per container (reactive half)
    target_concurrency: float = 1.0
    #: how often the scaler evaluates (seconds)
    evaluation_interval: float = 5.0
    #: smoothing factor for the observed concurrency
    smoothing: float = 0.6
    #: SLO percentile the model floor is solved for
    percentile: float = 0.95
    #: rate-estimation windows (model half), mirroring the LaSS defaults
    long_window: float = 120.0
    short_window: float = 10.0
    burst_factor: float = 2.0
    #: consecutive shrink-wanting ticks required before scaling down
    scale_down_patience: int = 3
    #: never exceed this many containers per function
    max_containers: int = 1000

    def __post_init__(self) -> None:
        """Validate the configuration parameters."""
        if self.target_concurrency <= 0:
            raise ValueError("target_concurrency must be positive")
        if self.evaluation_interval <= 0:
            raise ValueError("evaluation_interval must be positive")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0 < self.percentile < 1:
            raise ValueError("percentile must be in (0, 1)")
        if self.scale_down_patience < 1:
            raise ValueError("scale_down_patience must be >= 1")


class HybridPolicy(ControlPolicy):
    """Reactive scale-up, model-floored scale-down (see the module docstring)."""

    name = "hybrid"

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        config: Optional[HybridPolicyConfig] = None,
        metrics: Optional[MetricsCollector] = None,
        service_profiles: Optional[Mapping[str, ServiceTimeProfile]] = None,
        default_service_rates: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Wire the data path and the per-function estimators."""
        self.engine = engine
        self.cluster = cluster
        self.config = config or HybridPolicyConfig()
        self.metrics = metrics or MetricsCollector()
        self.dispatcher = SharedQueueDispatcher(engine, on_complete=self._on_request_complete)
        self.dispatcher.attach_cluster(cluster)
        self.autoscaler = Autoscaler(percentile=self.config.percentile)
        self._profiles = dict(service_profiles or {})
        self._default_rates = dict(default_service_rates or {})
        self._rates: Dict[str, DualWindowRateEstimator] = {}
        self._smoothed_concurrency: Dict[str, float] = {}
        self._shrink_streak: Dict[str, int] = {}
        self._started = False
        cluster.on_container_warm(self._on_container_warm)
        for deployment in cluster.deployments:
            self._rates[deployment.name] = DualWindowRateEstimator(
                self.config.long_window, self.config.short_window,
                self.config.burst_factor,
            )

    def start(self) -> None:
        """Begin the periodic evaluation loop."""
        if self._started:
            return
        self._started = True
        self.engine.schedule(
            self.config.evaluation_interval, self._evaluate,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> None:
        """Record the arrival (rate window + metrics) and dispatch/queue it."""
        estimator = self._rates.get(request.function_name)
        if estimator is not None:
            estimator.record_arrival(request.arrival_time)
        self.metrics.record_request(request)
        started = self.dispatcher.submit(request)
        if not started and not self.cluster.has_containers(request.function_name):
            self._create(request.function_name, 1)

    def _on_container_warm(self, container: Container) -> None:
        """A container finished cold start: drain its function's queue onto it."""
        self.dispatcher.drain(container.function_name)

    def _on_request_complete(self, request: Request, container: Container) -> None:
        """Completion callback: record the completion in the metrics."""
        self.metrics.record_completion(request)

    def columnar_plan(self):
        """The hybrid data path, described for the columnar kernel.

        Mirrors :meth:`dispatch` / :meth:`_on_request_complete`: fold
        arrivals into the per-function rate windows, create one
        container when a request queues against an empty function; the
        completion side is pure metrics (handled by the kernel's
        collector folds).
        """
        from repro.sim.columnar import ColumnarPlan

        def fold_arrivals(name: str, times) -> None:
            """Fold a batch of arrival times into the function's rate windows."""
            estimator = self._rates.get(name)
            if estimator is not None:
                estimator.record_arrivals_many(times)

        def create_on_empty(name: str) -> None:
            """Bootstrap one container for a function that has none."""
            self._create(name, 1)

        return ColumnarPlan(
            dispatcher=self.dispatcher,
            collector=self.metrics,
            fold_arrivals=fold_arrivals,
            create_on_empty=create_on_empty,
        )

    def _service_rate(self, name: str) -> float:
        """μ of a standard container, from the offline profile or the default."""
        profile = self._profiles.get(name)
        if profile is not None:
            return profile.service_rate(1.0)
        return self._default_rates.get(name, 10.0)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def run_epoch(self) -> None:
        """One synchronous evaluation pass (the policy-contract entry point)."""
        self._evaluate_once()

    def _evaluate(self) -> None:
        """Periodic tick: evaluate, then reschedule the next tick."""
        self._evaluate_once()
        self.engine.schedule(
            self.config.evaluation_interval, self._evaluate,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    def _evaluate_once(self) -> None:
        """One tick: reactive target vs. model floor, then scale."""
        now = self.engine.now
        snapshot_fns: Dict[str, FunctionEpochStats] = {}
        for deployment in self.cluster.deployments:
            name = deployment.name
            live = self.cluster.containers_of(name, include_draining=False)

            # reactive half: smoothed concurrency -> desired containers
            in_flight = sum(c.in_flight for c in live) + self.dispatcher.queue_length(name)
            previous = self._smoothed_concurrency.get(name, float(in_flight))
            smoothed = (
                self.config.smoothing * in_flight + (1 - self.config.smoothing) * previous
            )
            self._smoothed_concurrency[name] = smoothed
            reactive = math.ceil(smoothed / self.config.target_concurrency)

            # model half: the SLO floor at the current estimated rate
            observation = self._rates[name].estimate(now)
            floor = 0
            rate = observation.rate
            if rate > 0:
                decision = self.autoscaler.desired_containers(
                    function_name=name,
                    arrival_rate=rate,
                    service_rate=self._service_rate(name),
                    slo_deadline=deployment.slo_deadline or 1.0,
                    current_containers=len(live),
                    min_containers=deployment.min_containers,
                )
                floor = decision.desired_containers

            desired = min(self.config.max_containers, max(reactive, floor))
            if desired > len(live):
                self._shrink_streak[name] = 0
                self._create(name, desired - len(live))
            elif desired < len(live):
                streak = self._shrink_streak.get(name, 0) + 1
                self._shrink_streak[name] = streak
                if streak >= self.config.scale_down_patience:
                    victims = sorted(live, key=lambda c: c.in_flight)[: len(live) - desired]
                    for victim in victims:
                        if victim.in_flight == 0:
                            self.cluster.terminate_container(victim.container_id)
                            self.metrics.increment("terminations")
            else:
                self._shrink_streak[name] = 0

            live_after = self.cluster.containers_of(name, include_draining=False)
            snapshot_fns[name] = FunctionEpochStats(
                function_name=name,
                containers=len(live_after),
                cpu=sum(c.current_cpu for c in live_after),
                desired_containers=desired,
                arrival_rate_estimate=rate,
                service_rate_estimate=self._service_rate(name),
            )
        self.metrics.record_epoch(
            EpochSnapshot(
                time=now,
                overloaded=False,
                total_cpu=self.cluster.total_cpu,
                allocated_cpu=self.cluster.cpu_allocated,
                functions=snapshot_fns,
            )
        )

    def _create(self, name: str, count: int) -> None:
        """Create up to ``count`` new containers, capacity permitting."""
        deployment = self.cluster.deployment(name)
        for _ in range(count):
            node = self.cluster.find_node_for(deployment.cpu, deployment.memory_mb)
            if node is None:
                return
            self.cluster.create_container(name, node=node)
            self.metrics.increment("creations")

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def on_node_failed(self, node_name: str, salvaged) -> None:
        """Requeue the salvaged work and run an immediate recovery pass."""
        self._requeue_salvaged(salvaged)
        self._evaluate_once()
        self._drain_all()

    def on_node_recovered(self, node_name: str) -> None:
        """Capacity is back: run an immediate pass to spread back onto it."""
        self._evaluate_once()
        self._drain_all()

    def on_container_crashed(self, container: Container, salvaged) -> None:
        """Requeue the salvaged work and replace capacity immediately."""
        self._requeue_salvaged(salvaged)
        self._evaluate_once()
        self._drain_all()

    def _drain_all(self) -> None:
        """Push queued requests onto any containers that can now take them."""
        for deployment in self.cluster.deployments:
            if self.dispatcher.queue_length(deployment.name):
                self.dispatcher.drain(deployment.name)


def _validate_hybrid_params(params) -> None:
    """Eager params check: must construct a valid config."""
    config_from_params(HybridPolicyConfig, "hybrid", params)


@register_policy(
    "hybrid",
    "reactive scale-up with an M/M/c model floor on scale-down",
    validate_params=_validate_hybrid_params,
)
def _build_hybrid(context: PolicyContext, params: Dict[str, Any]) -> HybridPolicy:
    """Registry factory for the hybrid model-guided reactive scaler."""
    return HybridPolicy(
        engine=context.engine, cluster=context.cluster,
        config=config_from_params(HybridPolicyConfig, "hybrid", params),
        metrics=context.metrics,
        service_profiles=context.service_profiles,
        default_service_rates=context.default_service_rates,
    )


__all__ = ["HybridPolicy", "HybridPolicyConfig"]
