"""High-level simulation runner: wire workloads, cluster, and controller together.

This is the main entry point for examples and experiments::

    from repro import SimulationRunner, ClusterConfig, ControllerConfig
    from repro.workloads import WorkloadBinding, StaticRate, get_function

    runner = SimulationRunner(
        cluster_config=ClusterConfig(node_count=3, cpu_per_node=4),
        controller_config=ControllerConfig(),
        workloads=[WorkloadBinding(get_function("squeezenet"), StaticRate(20, duration=300))],
        seed=1,
    )
    result = runner.run(duration=300)
    print(result.waiting_summary("squeezenet").p95)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.cluster.cluster import ClusterConfig, EdgeCluster
from repro.core.controller import ControllerConfig
from repro.core.policy import ControlPolicy, PolicyContext, build_policy, get_policy
from repro.core.estimation.service_time import ServiceTimeProfile
from repro.core.allocation.hierarchy import SchedulingTree
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.metrics.collector import MetricsCollector
from repro.metrics.percentiles import WaitingTimeSummary
from repro.metrics.slo import SloReport
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.workloads.generator import ArrivalGenerator, WorkloadBinding


@dataclass
class SimulationResult:
    """Everything a finished run exposes for analysis.

    ``controller`` is the run's control-plane policy — a
    :class:`~repro.core.controller.LassController` by default, or
    whichever registered :class:`~repro.core.policy.ControlPolicy` the
    runner was asked for.
    """

    metrics: MetricsCollector
    cluster: EdgeCluster
    controller: ControlPolicy
    duration: float
    generated_requests: Dict[str, int] = field(default_factory=dict)

    def waiting_summary(self, function_name: Optional[str] = None, warmup: float = 0.0) -> WaitingTimeSummary:
        """Waiting-time percentiles for one function (or all)."""
        return self.metrics.waiting_summary(function_name, warmup)

    def slo(self, deadlines: Mapping[str, float], percentile: float = 0.95,
            warmup: float = 0.0) -> Dict[str, SloReport]:
        """SLO attainment per function."""
        return self.metrics.slo(deadlines, percentile, warmup)

    def mean_utilization(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Time-weighted mean cluster utilisation over the run."""
        return self.metrics.mean_utilization(start, end)

    def container_timeline(self, function_name: str):
        """``(times, container counts)`` series for a function."""
        return self.metrics.timeline.container_series(function_name)

    def cpu_timeline(self, function_name: str):
        """``(times, allocated CPU)`` series for a function."""
        return self.metrics.timeline.cpu_series(function_name)


class SimulationRunner:
    """Builds and runs one complete LaSS simulation.

    Parameters
    ----------
    workloads:
        One :class:`~repro.workloads.generator.WorkloadBinding` per function.
    cluster_config:
        Cluster sizing (defaults to the paper's 3×(4 vCPU, 16 GB) testbed).
    controller_config:
        Controller parameters (epoch length, reclamation policy, ...).
    scheduling_tree:
        Optional explicit fair-share hierarchy; otherwise built from the
        bindings' users and weights.
    seed:
        Master seed for all random streams.
    use_offline_profiles:
        Give the controller each function's offline service-time profile
        (the paper's option 1); otherwise it must learn online (option 2).
    warm_start_containers:
        Per-function number of containers to create before the workload
        starts, so experiments that study steady-state behaviour do not
        measure the very first cold start.
    arrival_batch_size:
        Arrivals scheduled per engine batch by each generator (see
        :class:`~repro.workloads.generator.ArrivalGenerator`); results
        are independent of this value because each function gets
        separate arrival and work RNG streams.  ``1`` reproduces the
        seed's per-event cadence and is used by the determinism
        regression test.
    metrics:
        Optional pre-built collector — pass
        ``MetricsCollector(streaming_percentiles=True, store_requests=False)``
        to keep constant-memory streaming percentiles on very long runs.
    fault_spec:
        Optional :class:`~repro.faults.spec.FaultSpec`; when given (and
        non-empty) a :class:`~repro.faults.injector.FaultInjector` is
        armed against the run — node failures/recoveries, container
        crash-on-dispatch, and cold-start latency distributions, all
        deterministic under the run's master seed.  ``None`` (or an
        empty spec) leaves the healthy event stream byte-identical.
    policy:
        The control plane to run: a registered policy name
        (``"lass"`` — the default — ``"openwhisk"``, ``"reactive"``,
        ``"static"``, ``"hybrid"``, ``"noop"``, or anything third-party
        code registered) or a callable ``factory(context) ->
        ControlPolicy`` for ad-hoc policies.  Every policy sees the same
        workloads, cluster, seed, and fault schedule.
    policy_params:
        Policy-specific configuration forwarded to the registered
        factory (e.g. ``{"allocations": {...}}`` for ``"static"``).
        LaSS takes none — it is configured through ``controller_config``.
    data_plane:
        ``"event"`` (the default, and the oracle) executes every request
        through per-request engine events; ``"columnar"`` runs the
        vectorized kernel (:mod:`repro.sim.columnar`) when the policy
        supports it, falling back to the event plane otherwise.  Both
        planes produce byte-identical results (the differential test
        suite enforces it).
    """

    def __init__(
        self,
        workloads: Sequence[WorkloadBinding],
        cluster_config: Optional[ClusterConfig] = None,
        controller_config: Optional[ControllerConfig] = None,
        scheduling_tree: Optional[SchedulingTree] = None,
        seed: int = 1,
        use_offline_profiles: bool = True,
        warm_start_containers: Optional[Mapping[str, int]] = None,
        arrival_batch_size: int = 256,
        metrics: Optional[MetricsCollector] = None,
        fault_spec: Optional["FaultSpec"] = None,
        policy: Union[str, Callable[[PolicyContext], ControlPolicy]] = "lass",
        policy_params: Optional[Mapping[str, Any]] = None,
        data_plane: str = "event",
    ) -> None:
        """Build the engine, cluster, controller, and arrival generators (see the class docstring for parameter semantics)."""
        if not workloads:
            raise ValueError("at least one workload binding is required")
        if data_plane not in ("event", "columnar"):
            raise ValueError(
                f"unknown data_plane {data_plane!r}; valid: 'event', 'columnar'"
            )
        self.data_plane = data_plane
        names = [w.profile.name for w in workloads]
        if len(set(names)) != len(names):
            raise ValueError("duplicate function names in workload bindings")

        self.engine = SimulationEngine()
        self.rng = RngStreams(seed)
        self.cluster = EdgeCluster(self.engine, cluster_config or ClusterConfig())
        # pass e.g. MetricsCollector(streaming_percentiles=True,
        # store_requests=False) so multi-million-request replays hold O(1)
        # metric state instead of every Request object
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.bindings = list(workloads)

        profiles: Dict[str, ServiceTimeProfile] = {}
        default_rates: Dict[str, float] = {}
        for binding in self.bindings:
            deployment = binding.profile.to_deployment(
                weight=binding.weight,
                user=binding.user,
                slo_deadline=binding.slo_deadline,
            )
            self.cluster.deploy(deployment)
            default_rates[binding.profile.name] = binding.profile.service_rate
            if use_offline_profiles:
                profiles[binding.profile.name] = binding.profile.to_service_profile()

        context = PolicyContext(
            engine=self.engine,
            cluster=self.cluster,
            metrics=self.metrics,
            config=controller_config or ControllerConfig(),
            scheduling_tree=scheduling_tree,
            service_profiles=profiles,
            default_service_rates=default_rates,
        )
        legacy_workload_rng = False
        if isinstance(policy, str):
            descriptor = get_policy(policy)
            legacy_workload_rng = descriptor.legacy_workload_rng
            self.policy: ControlPolicy = descriptor.factory(
                context, dict(policy_params or {})
            )
        else:
            if policy_params:
                raise ValueError("policy_params require a registered policy name")
            self.policy = policy(context)
        #: backwards-compatible alias — the policy IS the controller
        self.controller = self.policy

        self.generators: List[ArrivalGenerator] = []
        for binding in self.bindings:
            generator = ArrivalGenerator(
                engine=self.engine,
                profile=binding.profile,
                schedule=binding.schedule,
                dispatch=self.policy.dispatch,
                rng=self.rng.stream(f"arrivals:{binding.profile.name}"),
                slo_deadline=binding.slo_deadline,
                batch_size=arrival_batch_size,
                # the openwhisk policy keeps the historical wiring (work
                # interleaved with arrivals) so the kind="openwhisk"
                # scenario alias stays byte-identical to its pre-policy
                # output; every other policy gets the dedicated stream
                work_rng=(None if legacy_workload_rng
                          else self.rng.stream(f"work:{binding.profile.name}")),
            )
            self.generators.append(generator)

        self._warm_start = dict(warm_start_containers or {})

        self.fault_injector: Optional[FaultInjector] = None
        if fault_spec is not None and not fault_spec.is_empty():
            self.fault_injector = FaultInjector(
                engine=self.engine,
                cluster=self.cluster,
                controller=self.policy,
                metrics=self.metrics,
                rng=self.rng,
                spec=fault_spec,
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def prewarm(self) -> None:
        """Create the requested warm-start containers and let them finish cold start."""
        created = []
        for name, count in self._warm_start.items():
            for _ in range(count):
                created.append(self.cluster.create_container(name))
        if not created:
            return
        if self.cluster.cold_start_sampler is None:
            self.engine.run(until=self.engine.now + self.cluster.config.cold_start_latency + 1e-6)
        else:
            # cold-start latencies are sampled per container: step until every
            # warm-start container left STARTING (fault-injected runs only,
            # so the healthy prewarm path stays byte-exact)
            from repro.cluster.container import ContainerState

            while any(c.state is ContainerState.STARTING for c in created):
                if not self.engine.step():  # pragma: no cover - defensive
                    break

    def run(self, duration: float, extra_drain: float = 5.0) -> SimulationResult:
        """Run the simulation for ``duration`` seconds of workload.

        ``extra_drain`` extends the event loop past the workload horizon so
        in-flight requests can complete and be counted.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.prewarm()
        self.policy.start()
        for generator in self.generators:
            if generator.horizon is None or generator.horizon > duration:
                generator.horizon = duration
        kernel = None
        if self.data_plane == "columnar":
            from repro.sim.columnar import build_kernel

            kernel = build_kernel(self.engine, self.cluster, self.policy,
                                  self.generators)
        if kernel is not None:
            kernel.run(until=duration + extra_drain)
        else:
            for generator in self.generators:
                generator.start()
            self.engine.run(until=duration + extra_drain)
        generated = {g.profile.name: g.generated for g in self.generators}
        return SimulationResult(
            metrics=self.metrics,
            cluster=self.cluster,
            controller=self.controller,
            duration=duration,
            generated_requests=generated,
        )


def run_fixed_allocation(
    binding: WorkloadBinding,
    containers: int,
    duration: float,
    cluster_config: Optional[ClusterConfig] = None,
    seed: int = 1,
    deflation_plan: Optional[Sequence[float]] = None,
    extra_drain: float = 5.0,
    data_plane: str = "event",
) -> SimulationResult:
    """Run a single function against a *fixed* container allocation (no autoscaling).

    Used by the model-validation experiments (Figures 3 and 4): the model
    chooses ``containers`` ahead of time, the allocation stays fixed, and
    the measured waiting-time percentiles are compared against the SLO.

    Parameters
    ----------
    deflation_plan:
        Optional per-container CPU fractions (e.g. ``[0.7, 0.7, 1.0, 1.0]``)
        applied after the containers warm up, to create a heterogeneous
        configuration.
    extra_drain:
        Seconds the event loop runs past the workload horizon so
        in-flight requests can complete and be counted.
    data_plane:
        ``"event"`` (default/oracle) or ``"columnar"`` — same contract
        as :class:`SimulationRunner`.
    """
    if containers < 1:
        raise ValueError("containers must be >= 1")
    if data_plane not in ("event", "columnar"):
        raise ValueError(
            f"unknown data_plane {data_plane!r}; valid: 'event', 'columnar'"
        )
    engine = SimulationEngine()
    rng = RngStreams(seed)
    # size the "cluster" generously: these experiments isolate the queueing
    # behaviour from placement constraints
    config = cluster_config or ClusterConfig(
        node_count=max(3, containers), cpu_per_node=8.0, memory_per_node_mb=32 * 1024.0
    )
    cluster = EdgeCluster(engine, config)
    metrics = MetricsCollector()
    deployment = binding.profile.to_deployment(
        weight=binding.weight, user=binding.user, slo_deadline=binding.slo_deadline
    )
    cluster.deploy(deployment)

    # the explicit no-control-loop policy: pure WRR dispatch over the
    # fixed fleet (replaces the historical disabled-LassController trick,
    # with a byte-identical event stream)
    policy = build_policy(
        "noop", PolicyContext(engine=engine, cluster=cluster, metrics=metrics)
    )

    for _ in range(containers):
        cluster.create_container(binding.profile.name)
    engine.run(until=config.cold_start_latency + 1e-6)

    if deflation_plan is not None:
        live = cluster.containers_of(binding.profile.name)
        if len(deflation_plan) != len(live):
            raise ValueError("deflation_plan length must match the container count")
        for container, fraction in zip(live, deflation_plan):
            container.deflate_to(container.standard_cpu * fraction)

    generator = ArrivalGenerator(
        engine=engine,
        profile=binding.profile,
        schedule=binding.schedule,
        dispatch=policy.dispatch,
        rng=rng.stream(f"arrivals:{binding.profile.name}"),
        slo_deadline=binding.slo_deadline,
        horizon=duration,
        work_rng=rng.stream(f"work:{binding.profile.name}"),
    )
    kernel = None
    if data_plane == "columnar":
        from repro.sim.columnar import build_kernel

        kernel = build_kernel(engine, cluster, policy, [generator])
    if kernel is not None:
        kernel.run(until=duration + extra_drain)
    else:
        generator.start()
        engine.run(until=duration + extra_drain)
    return SimulationResult(
        metrics=metrics,
        cluster=cluster,
        controller=policy,
        duration=duration,
        generated_requests={binding.profile.name: generator.generated},
    )


__all__ = ["SimulationRunner", "SimulationResult", "run_fixed_allocation"]
