"""Workloads: the function catalogue, arrival-rate schedules, and generators.

* :mod:`repro.workloads.functions` — the seven functions of Table 1 with
  their standard container sizes and deflation response curves
  (Figure 7).
* :mod:`repro.workloads.generator` — Poisson arrival generators driven
  by rate schedules (static, discrete change, continuous change), the
  three modes of the paper's IoT workload generator.
* :mod:`repro.workloads.traces` — replay of per-minute invocation-count
  traces as a rate schedule.
* :mod:`repro.workloads.azure` — synthesis of Azure-Functions-like
  per-minute traces (the substitution for the proprietary Azure Public
  Dataset sample used in §6.7).
* :mod:`repro.workloads.stream` — chunked (constant-memory) synthesis of
  those traces plus the deterministic Azure-scale population behind the
  ``fig9-at-scale`` replay.
"""

from repro.workloads.functions import (
    FUNCTION_CATALOG,
    FunctionProfile,
    get_function,
    microbenchmark,
)
from repro.workloads.generator import ArrivalGenerator, WorkloadBinding
from repro.workloads.schedules import (
    CompositeSchedule,
    RampSchedule,
    RateSchedule,
    StaticRate,
    StepSchedule,
    TraceSchedule,
)
from repro.workloads.azure import (
    AzureTraceConfig,
    azure_rate_series,
    synthesize_azure_trace,
    synthesize_azure_traces,
)
from repro.workloads.stream import (
    PopulationFunction,
    iter_azure_trace_chunks,
    population_function,
)

__all__ = [
    "FunctionProfile",
    "FUNCTION_CATALOG",
    "get_function",
    "microbenchmark",
    "ArrivalGenerator",
    "WorkloadBinding",
    "RateSchedule",
    "StaticRate",
    "StepSchedule",
    "RampSchedule",
    "TraceSchedule",
    "CompositeSchedule",
    "AzureTraceConfig",
    "PopulationFunction",
    "azure_rate_series",
    "iter_azure_trace_chunks",
    "population_function",
    "synthesize_azure_trace",
    "synthesize_azure_traces",
]
