"""Poisson arrival generation driven by a rate schedule.

:class:`ArrivalGenerator` is the simulation-side equivalent of the
paper's configurable IoT workload generator: it samples arrival times
from a (possibly time-varying) Poisson process via thinning, creates
:class:`~repro.sim.request.Request` objects with per-request work drawn
from the function's service-time distribution, and hands them to the
controller's ``dispatch``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.sim.engine import SimulationEngine
from repro.sim.request import Request
from repro.workloads.functions import FunctionProfile
from repro.workloads.schedules import RateSchedule


@dataclass
class WorkloadBinding:
    """One function's workload: its profile plus a rate schedule."""

    profile: FunctionProfile
    schedule: RateSchedule
    slo_deadline: Optional[float] = 0.1
    weight: float = 1.0
    user: str = "default"


class ArrivalGenerator:
    """Generates Poisson arrivals for one function and injects them into the engine.

    Parameters
    ----------
    engine:
        Shared simulation engine.
    profile:
        The function being invoked (supplies the per-request work sampler).
    schedule:
        Arrival-rate schedule λ(t).
    dispatch:
        Callback receiving each created :class:`Request` (normally
        ``LassController.dispatch``).
    rng:
        Random generator for inter-arrival times and work sampling.
    slo_deadline:
        Relative SLO deadline stamped onto each request (``None`` for no SLO).
    horizon:
        Stop generating at this simulation time even if the schedule
        continues (defaults to the schedule's own end).
    thinning_window:
        Length of the look-ahead window used to bound the rate for
        thinning; small enough that step changes are picked up promptly.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        profile: FunctionProfile,
        schedule: RateSchedule,
        dispatch: Callable[[Request], None],
        rng: np.random.Generator,
        slo_deadline: Optional[float] = 0.1,
        horizon: Optional[float] = None,
        thinning_window: float = 5.0,
    ) -> None:
        if thinning_window <= 0:
            raise ValueError("thinning_window must be positive")
        self.engine = engine
        self.profile = profile
        self.schedule = schedule
        self.dispatch = dispatch
        self.rng = rng
        self.slo_deadline = slo_deadline
        self.horizon = horizon if horizon is not None else schedule.end_time
        self.thinning_window = float(thinning_window)
        self.generated: int = 0
        self._started = False

    # ------------------------------------------------------------------
    # Driving the process
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first arrival."""
        if self._started:
            return
        self._started = True
        self._schedule_next(self.engine.now)

    def _schedule_next(self, from_time: float) -> None:
        """Sample the next arrival after ``from_time`` by thinning and schedule it."""
        t = from_time
        while True:
            if self.horizon is not None and t >= self.horizon:
                return
            window_end = t + self.thinning_window
            if self.horizon is not None:
                window_end = min(window_end, self.horizon)
            bound = self.schedule.max_rate(t, window_end)
            if bound <= 0:
                # idle period: hop to the end of the window and try again
                t = window_end
                if self.horizon is not None and t >= self.horizon:
                    return
                continue
            gap = float(self.rng.exponential(1.0 / bound))
            if t + gap > window_end:
                # no (candidate) arrival inside this window; advance and retry
                t = window_end
                continue
            t = t + gap
            # thinning: accept with probability rate(t)/bound
            if self.rng.uniform() <= self.schedule.rate(t) / bound:
                break
        self.engine.schedule_at(max(t, self.engine.now), self._emit, t)

    def _emit(self, arrival_time: float) -> None:
        request = self.make_request(arrival_time)
        self.generated += 1
        self.dispatch(request)
        self._schedule_next(arrival_time)

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def make_request(self, arrival_time: float) -> Request:
        """Create one request with sampled work and an absolute deadline."""
        deadline = None if self.slo_deadline is None else arrival_time + self.slo_deadline
        return Request(
            function_name=self.profile.name,
            arrival_time=arrival_time,
            deadline=deadline,
            work=self.profile.sample_work(self.rng),
        )


def generate_arrival_times(
    schedule: RateSchedule,
    rng: np.random.Generator,
    horizon: float,
    thinning_window: float = 5.0,
) -> List[float]:
    """Stand-alone sampling of arrival times (no engine), used by tests.

    Samples a non-homogeneous Poisson process over ``[0, horizon]`` by
    thinning, identical in distribution to what :class:`ArrivalGenerator`
    injects into the simulation.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    times: List[float] = []
    t = 0.0
    while t < horizon:
        window_end = min(t + thinning_window, horizon)
        bound = schedule.max_rate(t, window_end)
        if bound <= 0:
            t = window_end
            continue
        gap = float(rng.exponential(1.0 / bound))
        if t + gap > window_end:
            t = window_end
            continue
        t += gap
        if rng.uniform() <= schedule.rate(t) / bound:
            times.append(t)
    return times


__all__ = ["ArrivalGenerator", "WorkloadBinding", "generate_arrival_times"]
