"""Poisson arrival generation driven by a rate schedule.

:class:`ArrivalGenerator` is the simulation-side equivalent of the
paper's configurable IoT workload generator: it samples arrival times
from a (possibly time-varying) Poisson process via thinning, creates
:class:`~repro.sim.request.Request` objects with per-request work drawn
from the function's service-time distribution, and hands them to the
controller's ``dispatch``.

Fast path
---------
Arrival sampling is vectorized: a :class:`_ThinningSampler` draws
``(gap, accept)`` uniform pairs from the RNG in fixed-size chunks,
converts them to candidate times with one ``cumsum`` per thinning
window, thins the whole candidate batch against ``rate_many``, and the
generator injects each batch of accepted arrivals through the engine's
``schedule_many`` — one numpy pass plus one batch call instead of one
RNG draw and one engine event per arrival.

The sampler's RNG consumption is a pure function of the schedule and
the chunk size — it does not depend on ``batch_size`` (how many
arrivals the generator schedules per engine batch).  Combined with a
dedicated ``work_rng`` stream for per-request work, a run's arrival
*and* work realisations are identical for every ``batch_size``,
including the ``batch_size=1`` per-event mode that mirrors the seed
implementation's one-event-per-arrival cadence.  The determinism
regression test relies on exactly this property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.sim.engine import SimulationEngine
from repro.sim.request import Request
from repro.workloads.functions import FunctionProfile
from repro.workloads.schedules import RateSchedule


@dataclass
class WorkloadBinding:
    """One function's workload: its profile plus a rate schedule."""

    profile: FunctionProfile
    schedule: RateSchedule
    slo_deadline: Optional[float] = 0.1
    weight: float = 1.0
    user: str = "default"


class _ThinningSampler:
    """Vectorized non-homogeneous Poisson sampling by thinning.

    For each thinning window ``[w, w + W)`` (clipped to the horizon) with
    rate bound ``B = max_rate(w, w + W)``, candidate arrivals are the
    cumulative sums of ``Exp(B)`` gaps; each candidate at time ``t`` is
    accepted with probability ``rate(t) / B``.  Every candidate consumes
    exactly one ``(gap, accept)`` uniform pair — including the candidate
    that overshoots the window — so RNG consumption depends only on the
    pair stream itself, never on how many arrivals a caller requests per
    :meth:`next_arrivals` call.
    """

    def __init__(
        self,
        schedule: RateSchedule,
        rng: np.random.Generator,
        start: float,
        horizon: Optional[float],
        thinning_window: float,
        chunk: int = 256,
    ) -> None:
        """Bind the schedule, RNG, and thinning-window geometry."""
        self.schedule = schedule
        self.rng = rng
        self.horizon = horizon
        self.window = float(thinning_window)
        self.chunk = int(chunk)
        self._t = float(start)
        self._window_end: Optional[float] = None
        self._bound = 0.0
        self._pairs = np.empty((0, 2))
        self._pos = 0
        self.exhausted = False

    def _refill(self) -> None:
        """Thin one window of candidates and append the accepted arrivals."""
        self._pairs = self.rng.random((self.chunk, 2))
        self._pos = 0

    def next_arrivals(self, max_count: int) -> List[float]:
        """Return at least ``max_count`` arrivals if any remain (may overshoot).

        Returns an empty list once the horizon is reached.  The overshoot
        happens because a whole window chunk is thinned at once; callers
        schedule everything they receive.
        """
        out: List[float] = []
        while len(out) < max_count and not self.exhausted:
            horizon = self.horizon
            if horizon is not None and self._t >= horizon:
                self.exhausted = True
                break
            if self._window_end is None or self._t >= self._window_end:
                window_end = self._t + self.window
                if horizon is not None:
                    window_end = min(window_end, horizon)
                self._window_end = window_end
                self._bound = self.schedule.max_rate(self._t, window_end)
            bound = self._bound
            if bound <= 0.0:
                # idle window: hop to its end and start a fresh window
                self._t = self._window_end
                self._window_end = None
                continue
            if self._pos >= len(self._pairs):
                self._refill()
            view = self._pairs[self._pos :]
            gaps = -np.log1p(-view[:, 0]) / bound
            candidates = self._t + np.cumsum(gaps)
            crossed = int(np.searchsorted(candidates, self._window_end, side="right"))
            if crossed == 0:
                # first candidate already overshoots the window
                self._pos += 1
                self._t = self._window_end
                self._window_end = None
                continue
            in_window = candidates[:crossed]
            accept_u = view[:crossed, 1]
            rates = self.schedule.rate_many(in_window)
            accepted = in_window[accept_u * bound <= rates]
            out.extend(accepted.tolist())
            if crossed < len(candidates):
                # the (crossed+1)-th pair was consumed by the overshoot candidate
                self._pos += crossed + 1
                self._t = self._window_end
                self._window_end = None
            else:
                # buffer exhausted inside the window: continue from the last candidate
                self._pos += crossed
                self._t = float(candidates[-1])
        return out


class ArrivalGenerator:
    """Generates Poisson arrivals for one function and injects them into the engine.

    Parameters
    ----------
    engine:
        Shared simulation engine.
    profile:
        The function being invoked (supplies the per-request work sampler).
    schedule:
        Arrival-rate schedule λ(t).
    dispatch:
        Callback receiving each created :class:`Request` (normally
        ``LassController.dispatch``).
    rng:
        Random generator for inter-arrival times (and for work sampling
        when ``work_rng`` is not given).
    slo_deadline:
        Relative SLO deadline stamped onto each request (``None`` for no SLO).
    horizon:
        Stop generating at this simulation time even if the schedule
        continues (defaults to the schedule's own end).  May be assigned
        up to the moment :meth:`start` is called.
    thinning_window:
        Length of the look-ahead window used to bound the rate for
        thinning; small enough that step changes are picked up promptly.
    batch_size:
        Target number of arrivals scheduled per engine batch.  The
        default injects arrivals in vectorized batches through
        ``schedule_many``; ``batch_size=1`` reproduces the seed
        implementation's one-event-per-arrival cadence (used by the
        determinism regression test).  Results are independent of
        ``batch_size`` when ``work_rng`` is a separate stream.
    work_rng:
        Optional dedicated stream for per-request work sampling.  When
        omitted, work is drawn from ``rng`` (deterministic for a fixed
        ``batch_size``, but interleaved with arrival sampling).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        profile: FunctionProfile,
        schedule: RateSchedule,
        dispatch: Callable[[Request], None],
        rng: np.random.Generator,
        slo_deadline: Optional[float] = 0.1,
        horizon: Optional[float] = None,
        thinning_window: float = 5.0,
        batch_size: int = 256,
        work_rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Wire the generator's sampler and RNG streams (see the class docstring for parameter semantics)."""
        if thinning_window <= 0:
            raise ValueError("thinning_window must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.engine = engine
        self.profile = profile
        self.schedule = schedule
        self.dispatch = dispatch
        self.rng = rng
        self.work_rng = work_rng if work_rng is not None else rng
        self.slo_deadline = slo_deadline
        self.horizon = horizon if horizon is not None else schedule.end_time
        self.thinning_window = float(thinning_window)
        self.batch_size = int(batch_size)
        self.generated: int = 0
        self._started = False
        self._sampler: Optional[_ThinningSampler] = None

    # ------------------------------------------------------------------
    # Driving the process
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Sample and schedule the first batch of arrivals."""
        if self._started:
            return
        self._started = True
        self._sampler = _ThinningSampler(
            self.schedule,
            self.rng,
            start=self.engine.now,
            horizon=self.horizon,
            thinning_window=self.thinning_window,
        )
        self._pump()

    def _pump(self) -> None:
        """Schedule the next batch of arrivals plus the follow-up pump.

        The pump event is scheduled at the batch's last arrival time with
        the same (data) priority but a later sequence number, so it fires
        after that arrival's dispatch — the next batch is then sampled
        with the RNG positioned exactly as in per-event mode.
        """
        assert self._sampler is not None
        times = self._sampler.next_arrivals(self.batch_size)
        if not times:
            return
        # pre-sample the whole batch's work in one vectorized draw; the RNG
        # stream consumption is identical to per-emit scalar draws, so this
        # does not change a seeded realisation (see sample_work_many)
        works = self.profile.sample_work_many(self.work_rng, len(times))
        emit = self._emit
        self.engine.schedule_many(
            (t, emit, (t, w)) for t, w in zip(times, works.tolist())
        )
        self.engine.call_at(times[-1], self._pump)

    def _emit(self, arrival_time: float, work: float) -> None:
        """Create one request at its arrival time and hand it to dispatch."""
        deadline = None if self.slo_deadline is None else arrival_time + self.slo_deadline
        request = Request(
            function_name=self.profile.name,
            arrival_time=arrival_time,
            deadline=deadline,
            work=work,
        )
        self.generated += 1
        self.dispatch(request)

    def materialize_arrivals(self) -> "tuple[List[float], List[float]]":
        """Sample the whole run's arrivals up front (columnar data plane).

        Returns ``(times, works)`` — every arrival time up to the
        horizon plus each request's sampled work — instead of pumping
        them through engine events.  RNG consumption is *identical* to
        the event-driven path: batches of ``batch_size`` arrivals are
        drawn from the sampler and each batch's work is drawn
        immediately afterwards, exactly mirroring :meth:`_pump`'s
        interleaving (which matters when ``work_rng`` is the shared
        arrival stream).  Marks the generator as started; a generator
        can drive exactly one of the two data planes.
        """
        if self._started:
            raise RuntimeError("generator already started")
        self._started = True
        sampler = _ThinningSampler(
            self.schedule,
            self.rng,
            start=self.engine.now,
            horizon=self.horizon,
            thinning_window=self.thinning_window,
        )
        self._sampler = sampler
        times: List[float] = []
        works: List[float] = []
        while True:
            batch = sampler.next_arrivals(self.batch_size)
            if not batch:
                break
            times.extend(batch)
            works.extend(self.profile.sample_work_many(self.work_rng, len(batch)).tolist())
        self.generated = len(times)
        return times, works

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def make_request(self, arrival_time: float) -> Request:
        """Create one request with sampled work and an absolute deadline."""
        deadline = None if self.slo_deadline is None else arrival_time + self.slo_deadline
        return Request(
            function_name=self.profile.name,
            arrival_time=arrival_time,
            deadline=deadline,
            work=self.profile.sample_work(self.work_rng),
        )


def generate_arrival_times(
    schedule: RateSchedule,
    rng: np.random.Generator,
    horizon: float,
    thinning_window: float = 5.0,
) -> List[float]:
    """Stand-alone sampling of arrival times (no engine), used by tests.

    Samples a non-homogeneous Poisson process over ``[0, horizon]`` by
    thinning, identical in distribution to what :class:`ArrivalGenerator`
    injects into the simulation (it runs the same sampler).
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    sampler = _ThinningSampler(schedule, rng, start=0.0, horizon=horizon, thinning_window=thinning_window)
    times: List[float] = []
    while True:
        batch = sampler.next_arrivals(1024)
        if not batch:
            return times
        times.extend(batch)


__all__ = ["ArrivalGenerator", "WorkloadBinding", "generate_arrival_times"]
