"""Streaming (chunked) synthesis of Azure-like traces at population scale.

The monolithic :func:`~repro.workloads.azure.synthesize_azure_trace`
materialises a whole trace in one call.  That is fine for the six
functions of Figure 9, but the trace-scale replay
(:mod:`repro.scenarios.trace_shard`) streams *tens of thousands* of
functions and must hold only one chunk of counts at a time.  This
module provides the two pieces that make that possible without changing
a single output byte:

Chunked ingestion
-----------------
:func:`iter_azure_trace_chunks` yields the per-minute counts of one
trace in chunks whose concatenation is **byte-identical** to the
monolithic synthesis for *every* chunk size.  The determinism contract
rests on two facts, both pinned by ``tests/test_trace_replay.py``:

1. the azure generator consumes its RNG in two ordered passes — the
   rate-series draws (:func:`~repro.workloads.azure.azure_rate_series`),
   then one Poisson pass over the rate array — so the chunked path can
   replay pass one verbatim and split only pass two;
2. NumPy ``Generator.poisson`` fills element by element from the bit
   stream, so drawing consecutive sub-arrays on the *same* generator
   consumes exactly the draws of one whole-array call (batch-split
   invariance, verified by a hypothesis property).

The rate series itself is O(``duration_minutes``) floats — the resident
bound is minutes + chunk, independent of how many invocations the trace
contains.

Synthetic population
--------------------
:func:`population_function` derives one function of an Azure-scale
population deterministically from ``(seed, index)``: a heavy-tailed
(log-normal) mean rate spanning orders of magnitude, a sporadic/steady
split, per-function service time and SLO deadline.  Each function's
*trace* RNG is seeded exactly like
:func:`~repro.workloads.azure.synthesize_azure_traces`
(``SeedSequence(trace_seed, spawn_key=(index,))``), so a function's
counts depend only on its global index — never on which shard replays
it or how the population is partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping

import numpy as np

from repro.workloads.azure import AzureTraceConfig, azure_rate_series

#: Default knobs of the synthetic population (used by ``fig9-at-scale``).
DEFAULT_POPULATION: Dict[str, Any] = {
    "functions": 10_000,
    "seed": 2021,
    "sporadic_fraction": 0.4,
    "rate_log10_mean": -2.0,
    "rate_log10_sigma": 0.8,
}


def iter_azure_trace_chunks(
    config: AzureTraceConfig,
    duration_minutes: int,
    rng: np.random.Generator,
    chunk_minutes: int,
) -> Iterator[np.ndarray]:
    """Yield one trace's per-minute counts in ``chunk_minutes``-sized chunks.

    Concatenating the yielded arrays reproduces
    :func:`~repro.workloads.azure.synthesize_azure_trace` byte-for-byte
    for every chunk size (including 1 and anything ≥ the trace length):
    the rate pass runs once up front, then each chunk draws its Poisson
    counts from the same generator in minute order.
    """
    if chunk_minutes <= 0:
        raise ValueError("chunk_minutes must be positive")
    rates = azure_rate_series(config, duration_minutes, rng)
    for start in range(0, duration_minutes, chunk_minutes):
        yield rng.poisson(rates[start:start + chunk_minutes]).astype(int)


@dataclass(frozen=True)
class PopulationFunction:
    """One function of the synthetic at-scale population.

    ``config`` drives the trace generator; ``service_time`` /
    ``slo_deadline`` feed the per-function capacity model of the replay
    (one fast M/M/c solve per function).
    """

    name: str
    index: int
    config: AzureTraceConfig
    service_time: float
    slo_deadline: float


def population_function(index: int, population: Mapping[str, Any]) -> PopulationFunction:
    """Derive function ``index`` of a population, deterministically.

    All parameters are drawn from
    ``default_rng(SeedSequence(population["seed"], spawn_key=(index,)))``
    in a fixed order, so the function is a pure function of
    ``(seed, index)`` — shard boundaries can never perturb it.  The mean
    rate is log-normal (base 10), reproducing the orders-of-magnitude
    heterogeneity of the real Azure Functions trace; a
    ``sporadic_fraction`` of functions get the on/off burst pattern.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(int(population["seed"]), spawn_key=(int(index),))
    )
    # draw order is part of the determinism contract — never reorder
    u_sporadic = rng.uniform()
    log10_rate = rng.normal(float(population["rate_log10_mean"]),
                            float(population["rate_log10_sigma"]))
    variability = rng.uniform(0.2, 0.45)
    burst_multiplier = rng.uniform(4.0, 8.0)
    burst_probability = rng.uniform(0.02, 0.12)
    service_time = float(10.0 ** rng.uniform(-2.0, -0.5))
    slo_factor = rng.uniform(3.0, 10.0)

    sporadic = bool(u_sporadic < float(population["sporadic_fraction"]))
    config = AzureTraceConfig(
        mean_rate=float(10.0 ** log10_rate),
        sporadic=sporadic,
        burst_probability=float(burst_probability),
        burst_multiplier=float(burst_multiplier),
        variability=float(variability),
    )
    return PopulationFunction(
        name=f"fn-{index:06d}",
        index=int(index),
        config=config,
        service_time=service_time,
        slo_deadline=float(service_time * slo_factor),
    )


def trace_rng(trace_seed: int, index: int) -> np.random.Generator:
    """The trace RNG of function ``index`` — the exact
    :func:`~repro.workloads.azure.synthesize_azure_traces` seeding, so a
    function's counts are independent of sharding."""
    return np.random.default_rng(
        np.random.SeedSequence(int(trace_seed), spawn_key=(int(index),))
    )


__all__ = [
    "DEFAULT_POPULATION",
    "PopulationFunction",
    "iter_azure_trace_chunks",
    "population_function",
    "trace_rng",
]
