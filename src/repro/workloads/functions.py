"""The function catalogue (paper Table 1) and deflation response curves (Figure 7).

Each :class:`FunctionProfile` captures what the control plane can know
about a function: its standard container size, its mean service time on
a standard container, the shape of its service-time distribution, and
how its service time responds to CPU deflation.

The paper's functions run real code (torchvision DNNs, BinaryAlert,
a geofencing service, an image resizer); here they are behavioural
models calibrated to the numbers the paper reports:

* Table 1 gives the standard container sizes, reproduced verbatim.
* Figure 7 shows that deflating the CPU by up to ~30 % costs only a
  small service-time penalty, after which service time grows roughly
  linearly with further deflation; MobileNet, which saturates its 2
  vCPUs, degrades almost proportionally from the start.
* Mean service times are chosen to be representative of the function
  classes (tens of ms for lightweight functions, 100–300 ms for DNN
  inference) — the paper does not tabulate them, so these are
  calibration constants, recorded here and in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.cluster.cluster import FunctionDeployment
from repro.core.estimation.service_time import ServiceTimeProfile
from repro.core.queueing.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    ServiceTimeDistribution,
)


def slack_speed_curve(slack: float = 0.3, slack_penalty: float = 0.1) -> Callable[[float], float]:
    """Build a deflation response curve with the shape reported in Figure 7.

    Parameters
    ----------
    slack:
        Fraction of the standard CPU allocation that is slack: deflating
        by up to this amount costs at most ``slack_penalty`` of speed.
    slack_penalty:
        Relative slowdown incurred at the edge of the slack region
        (e.g. 0.1 means service time grows by ~10 % at 30 % deflation).

    Returns
    -------
    Callable[[float], float]
        ``speed(cpu_fraction)`` with ``speed(1.0) == 1.0``, decreasing
        smoothly inside the slack region and proportionally to CPU beyond
        it.
    """
    if not 0 <= slack < 1:
        raise ValueError("slack must be in [0, 1)")
    if not 0 <= slack_penalty < 1:
        raise ValueError("slack_penalty must be in [0, 1)")
    knee_fraction = 1.0 - slack
    knee_speed = 1.0 / (1.0 + slack_penalty)

    def speed(cpu_fraction: float) -> float:
        """Speed multiplier at a given CPU fraction."""
        fraction = min(1.0, max(1e-6, cpu_fraction))
        if fraction >= knee_fraction:
            # linear interpolation of the (small) penalty inside the slack region
            if knee_fraction >= 1.0:
                return 1.0
            deflated = 1.0 - fraction
            penalty = slack_penalty * (deflated / slack) if slack > 0 else 0.0
            return 1.0 / (1.0 + penalty)
        # beyond the slack: speed proportional to CPU, continuous at the knee
        return knee_speed * fraction / knee_fraction

    return speed


def proportional_speed_curve() -> Callable[[float], float]:
    """Speed strictly proportional to CPU (no slack at all) — MobileNet's regime."""
    return lambda cpu_fraction: min(1.0, max(1e-6, cpu_fraction))


@dataclass(frozen=True)
class FunctionProfile:
    """Behavioural model of one serverless function.

    Attributes
    ----------
    name:
        Function name (matches Table 1).
    language:
        Implementation language(s) as reported in Table 1 (informational).
    cpu:
        Standard container CPU allocation in vCPUs (Table 1).
    memory_mb:
        Standard container memory allocation in MB (Table 1).
    mean_service_time:
        Mean service time on a standard container, in seconds.
    distribution:
        Service-time distribution family at the standard size.
    slack:
        Deflation slack: fraction of CPU reclaimable with only a small
        penalty (Figure 7).
    slack_penalty:
        Relative slowdown at the edge of the slack region.
    is_dnn:
        Whether the function is one of the DNN inference models (used by
        experiment grouping, e.g. Figure 7a vs. 7b).
    """

    name: str
    language: str
    cpu: float
    memory_mb: float
    mean_service_time: float
    distribution: ServiceTimeDistribution = field(default_factory=lambda: Exponential(0.1))
    slack: float = 0.3
    slack_penalty: float = 0.1
    is_dnn: bool = False

    def __post_init__(self) -> None:
        """Validate the container size and service time."""
        if self.cpu <= 0 or self.memory_mb <= 0:
            raise ValueError(f"{self.name}: container size must be positive")
        if self.mean_service_time <= 0:
            raise ValueError(f"{self.name}: mean service time must be positive")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def service_rate(self) -> float:
        """Standard-container service rate μ in requests per second."""
        return 1.0 / self.mean_service_time

    def speed_curve(self) -> Callable[[float], float]:
        """The deflation response curve ``speed(cpu_fraction)``."""
        if self.slack <= 0:
            return proportional_speed_curve()
        return slack_speed_curve(self.slack, self.slack_penalty)

    def service_time_at(self, cpu_fraction: float) -> float:
        """Mean service time when the container runs at ``cpu_fraction`` of standard CPU."""
        return self.mean_service_time / self.speed_curve()(cpu_fraction)

    def _work_dist(self):
        """The cached service-time distribution scaled to the profile's mean."""
        dist = self.__dict__.get("_work_distribution")
        if dist is None:
            # cache the scaled distribution: building it per request put an
            # object allocation on the per-arrival hot path
            scale = self.mean_service_time / self.distribution.mean
            dist = self.distribution.scaled(scale)
            self.__dict__["_work_distribution"] = dist
        return dist

    def sample_work(self, rng: np.random.Generator) -> float:
        """Sample the work of one request, in standard-container seconds."""
        return float(self._work_dist().sample(rng))

    def sample_work_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Vectorized :meth:`sample_work` for a batch of requests.

        Consumes the RNG stream identically to ``count`` scalar calls
        (numpy generators draw element-wise from the same bit stream), so
        batched and per-request sampling are interchangeable without
        changing a seeded run's realisation.
        """
        return self._work_dist().sample(rng, size=count)

    def to_deployment(
        self,
        weight: float = 1.0,
        user: str = "default",
        slo_deadline: Optional[float] = 0.1,
        slo_percentile: float = 0.95,
        min_containers: int = 0,
    ) -> FunctionDeployment:
        """Build the cluster-facing deployment record for this function."""
        return FunctionDeployment(
            name=self.name,
            cpu=self.cpu,
            memory_mb=self.memory_mb,
            weight=weight,
            user=user,
            slo_deadline=slo_deadline,
            slo_percentile=slo_percentile,
            speed_of_cpu=self.speed_curve(),
            min_containers=min_containers,
        )

    def to_service_profile(
        self, cpu_fractions: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    ) -> ServiceTimeProfile:
        """Offline service-time profile (mean per CPU fraction) for the controller."""
        return ServiceTimeProfile.from_speed_curve(
            self.name,
            self.mean_service_time,
            self.speed_curve(),
            cpu_fractions=cpu_fractions,
            distribution=self.distribution,
        )

    def with_service_time(self, mean_service_time: float) -> "FunctionProfile":
        """A copy with a different mean service time (used by the micro-benchmark)."""
        dist = self.distribution.scaled(mean_service_time / self.distribution.mean)
        return replace(self, mean_service_time=mean_service_time, distribution=dist)


# ----------------------------------------------------------------------
# Table 1: the seven functions used in the evaluation
# ----------------------------------------------------------------------
def microbenchmark(mean_service_time: float = 0.1) -> FunctionProfile:
    """The configurable CPU micro-benchmark (service time set per experiment).

    The paper configures it with 100 ms (μ=10 req/s) or 200 ms
    (μ=5 req/s) per invocation for the model-validation experiments.
    """
    return FunctionProfile(
        name="microbenchmark",
        language="Python",
        cpu=0.4,
        memory_mb=256,
        mean_service_time=mean_service_time,
        distribution=Exponential(mean_service_time),
        slack=0.3,
        slack_penalty=0.1,
    )


FUNCTION_CATALOG: Dict[str, FunctionProfile] = {
    "microbenchmark": microbenchmark(),
    "mobilenet": FunctionProfile(
        name="mobilenet",
        language="Python",
        cpu=2.0,
        memory_mb=1024,
        mean_service_time=0.30,
        distribution=LogNormal(0.30, cv=0.2),
        # MobileNet runs at ~100 % CPU inside its container: essentially no slack
        slack=0.05,
        slack_penalty=0.05,
        is_dnn=True,
    ),
    "shufflenet": FunctionProfile(
        name="shufflenet",
        language="Python",
        cpu=1.0,
        memory_mb=512,
        mean_service_time=0.15,
        distribution=LogNormal(0.15, cv=0.2),
        slack=0.3,
        slack_penalty=0.12,
        is_dnn=True,
    ),
    "squeezenet": FunctionProfile(
        name="squeezenet",
        language="Python",
        cpu=1.0,
        memory_mb=512,
        mean_service_time=0.10,
        distribution=LogNormal(0.10, cv=0.2),
        slack=0.3,
        slack_penalty=0.12,
        is_dnn=True,
    ),
    "binaryalert": FunctionProfile(
        name="binaryalert",
        language="Python",
        cpu=0.5,
        memory_mb=256,
        mean_service_time=0.05,
        distribution=Exponential(0.05),
        slack=0.3,
        slack_penalty=0.1,
    ),
    "geofence": FunctionProfile(
        name="geofence",
        language="JavaScript",
        cpu=0.3,
        memory_mb=128,
        mean_service_time=0.02,
        distribution=Exponential(0.02),
        slack=0.35,
        slack_penalty=0.08,
    ),
    "image-resizer": FunctionProfile(
        name="image-resizer",
        language="JavaScript/WASM",
        cpu=0.8,
        memory_mb=256,
        mean_service_time=0.08,
        distribution=LogNormal(0.08, cv=0.3),
        slack=0.3,
        slack_penalty=0.1,
    ),
}


def get_function(name: str) -> FunctionProfile:
    """Look up a catalogue function by name."""
    try:
        return FUNCTION_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown function {name!r}; available: {sorted(FUNCTION_CATALOG)}"
        ) from None


def table1_rows() -> Tuple[Tuple[str, str, str], ...]:
    """The rows of Table 1 as (function, language, standard size) strings."""
    rows = []
    for profile in FUNCTION_CATALOG.values():
        size = f"{profile.cpu:g} vCPU + {int(profile.memory_mb)} MB"
        rows.append((profile.name, profile.language, size))
    return tuple(rows)


__all__ = [
    "FunctionProfile",
    "FUNCTION_CATALOG",
    "get_function",
    "microbenchmark",
    "slack_speed_curve",
    "proportional_speed_curve",
    "table1_rows",
]
