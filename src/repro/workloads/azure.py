"""Synthetic Azure-Functions-like invocation traces (substitution for §6.7).

The paper replays one-hour samples of the Azure Functions Trace 2019
(part of the Azure Public Dataset): per-minute invocation counts of
production functions, which are known — both from the paper and from
the original characterisation study ("Serverless in the Wild") — to be

* aggregated per minute,
* extremely heterogeneous across functions (orders of magnitude spread
  in average rate),
* bursty: many functions are sporadic/on-off (the paper singles out the
  MobileNet workload as "highly sporadic"), others have a relatively
  steady base load with fluctuations.

The proprietary CSVs are not available offline, so this module
synthesises per-minute traces with exactly those properties.  Each
function gets a base rate, a smooth modulation (a slow sinusoid plus
autocorrelated noise), and — for sporadic functions — an on/off burst
process.  The generator is deterministic given a seed, so experiments
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.workloads.schedules import TraceSchedule


@dataclass(frozen=True)
class AzureTraceConfig:
    """Parameters of one synthetic per-minute trace.

    Attributes
    ----------
    mean_rate:
        Long-run average arrival rate in requests/second.
    sporadic:
        If true the function is mostly idle and receives occasional
        bursts (the MobileNet-like pattern); if false it has a steady
        base load with fluctuations.
    burst_probability:
        Per-minute probability that a sporadic function starts a burst.
    burst_duration_minutes:
        Mean duration of a burst, in minutes (geometric).
    burst_multiplier:
        Peak rate of a burst relative to ``mean_rate``.
    variability:
        Coefficient of variation of the per-minute noise for steady
        functions.
    """

    mean_rate: float
    sporadic: bool = False
    burst_probability: float = 0.08
    burst_duration_minutes: float = 5.0
    burst_multiplier: float = 6.0
    variability: float = 0.3

    def __post_init__(self) -> None:
        """Validate the trace parameters."""
        if self.mean_rate < 0:
            raise ValueError("mean_rate must be non-negative")
        if not 0 <= self.burst_probability <= 1:
            raise ValueError("burst_probability must be in [0, 1]")
        if self.burst_duration_minutes <= 0:
            raise ValueError("burst_duration_minutes must be positive")
        if self.burst_multiplier <= 0:
            raise ValueError("burst_multiplier must be positive")
        if self.variability < 0:
            raise ValueError("variability must be non-negative")


def azure_rate_series(
    config: AzureTraceConfig,
    duration_minutes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """The per-minute *rate* series underlying one synthetic trace.

    This is the first of the two RNG passes of
    :func:`synthesize_azure_trace`: it consumes exactly the burst /
    modulation draws (one ``uniform`` per minute plus an occasional
    ``geometric`` for sporadic functions; one phase ``uniform`` plus one
    ``normal`` per minute for steady ones) and returns the non-negative
    expected-arrivals-per-minute array the Poisson pass then samples.
    Splitting the passes is what lets
    :func:`repro.workloads.stream.iter_azure_trace_chunks` draw the
    Poisson counts chunk by chunk while staying byte-identical to the
    monolithic synthesis.
    """
    if duration_minutes <= 0:
        raise ValueError("duration_minutes must be positive")
    minutes = np.arange(duration_minutes)
    base_per_minute = config.mean_rate * 60.0

    if config.sporadic:
        # on/off burst process: mostly zero, occasional multi-minute bursts
        rates = np.zeros(duration_minutes)
        in_burst = False
        burst_left = 0
        for m in range(duration_minutes):
            if not in_burst and rng.uniform() < config.burst_probability:
                in_burst = True
                burst_left = max(1, int(rng.geometric(1.0 / config.burst_duration_minutes)))
            if in_burst:
                shape = np.sin(np.pi * min(1.0, (1 + m % max(burst_left, 1)) / max(burst_left, 1)))
                rates[m] = base_per_minute * config.burst_multiplier * max(0.3, shape)
                burst_left -= 1
                if burst_left <= 0:
                    in_burst = False
        # a trickle of background invocations so the function is not always cold
        rates += base_per_minute * 0.05
    else:
        # steady base load: slow sinusoidal modulation + AR(1) noise
        phase = rng.uniform(0, 2 * np.pi)
        modulation = 1.0 + 0.25 * np.sin(2 * np.pi * minutes / max(duration_minutes, 1) + phase)
        noise = np.zeros(duration_minutes)
        sigma = config.variability
        for m in range(1, duration_minutes):
            noise[m] = 0.7 * noise[m - 1] + rng.normal(0, sigma)
        rates = base_per_minute * modulation * np.clip(1.0 + noise, 0.2, 3.0)
    return np.clip(rates, 0.0, None)


def synthesize_azure_trace(
    config: AzureTraceConfig,
    duration_minutes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Synthesise one function's per-minute invocation counts.

    Returns an integer array of length ``duration_minutes``.  The RNG is
    consumed in two passes — the :func:`azure_rate_series` draws, then a
    single Poisson pass over the whole rate array — a contract the
    chunked streaming path relies on (see
    :mod:`repro.workloads.stream`).
    """
    rates = azure_rate_series(config, duration_minutes, rng)
    counts = rng.poisson(rates)
    return counts.astype(int)


#: Default trace shapes for the six functions of the §6.7 experiment.
#: MobileNet is the "highly sporadic" one; rates are calibrated so that the
#: 3-node / 12-vCPU cluster is highly utilised, as in the paper.
DEFAULT_AZURE_CONFIGS: Dict[str, AzureTraceConfig] = {
    "mobilenet": AzureTraceConfig(mean_rate=2.5, sporadic=True, burst_multiplier=6.0),
    "shufflenet": AzureTraceConfig(mean_rate=16.0, variability=0.35),
    "squeezenet": AzureTraceConfig(mean_rate=25.0, variability=0.3),
    "binaryalert": AzureTraceConfig(mean_rate=50.0, variability=0.4),
    "geofence": AzureTraceConfig(mean_rate=80.0, variability=0.3),
    "image-resizer": AzureTraceConfig(mean_rate=30.0, variability=0.35),
}


def synthesize_azure_traces(
    configs: Optional[Mapping[str, AzureTraceConfig]] = None,
    duration_minutes: int = 60,
    seed: int = 2019,
) -> Dict[str, TraceSchedule]:
    """Synthesise per-minute traces for a set of functions.

    Parameters
    ----------
    configs:
        Per-function trace configurations (defaults to the six-function
        setup of §6.7).
    duration_minutes:
        Trace length; the paper samples one hour.
    seed:
        Master seed; each function's trace is drawn from its own
        sub-stream so adding a function does not perturb the others.

    Returns
    -------
    dict
        function name → :class:`~repro.workloads.schedules.TraceSchedule`.
    """
    configs = dict(configs) if configs is not None else dict(DEFAULT_AZURE_CONFIGS)
    schedules: Dict[str, TraceSchedule] = {}
    for index, (name, config) in enumerate(sorted(configs.items())):
        rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(index,)))
        counts = synthesize_azure_trace(config, duration_minutes, rng)
        schedules[name] = TraceSchedule(counts, interval=60.0)
    return schedules


def trace_statistics(schedules: Mapping[str, TraceSchedule]) -> Dict[str, Dict[str, float]]:
    """Summary statistics of a set of traces (mean/peak rate, burstiness)."""
    stats: Dict[str, Dict[str, float]] = {}
    for name, schedule in schedules.items():
        counts = schedule.counts
        mean = float(counts.mean())
        peak = float(counts.max())
        stats[name] = {
            "mean_per_minute": mean,
            "peak_per_minute": peak,
            "peak_to_mean": peak / mean if mean > 0 else float("inf"),
            "zero_minutes": float((counts == 0).sum()),
            "total": float(counts.sum()),
        }
    return stats


__all__ = [
    "AzureTraceConfig",
    "DEFAULT_AZURE_CONFIGS",
    "azure_rate_series",
    "synthesize_azure_trace",
    "synthesize_azure_traces",
    "trace_statistics",
]
