"""Arrival-rate schedules: how a function's request rate varies over time.

The paper's IoT workload generator supports three modes (§6.1):

* **Static** — a constant arrival rate (:class:`StaticRate`).
* **Discrete change** — the rate changes at discrete instants and is
  constant in between (:class:`StepSchedule`); this is also the mode
  used to replay the per-minute Azure traces (:class:`TraceSchedule`).
* **Continuous change** — the rate is adjusted continuously
  (:class:`RampSchedule` provides piecewise-linear ramps).

A schedule is a deterministic function ``rate(t)`` plus enough
structure (``max_rate``) for the thinning-based Poisson generator to
sample arrivals exactly.
"""

from __future__ import annotations

import abc
import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


class RateSchedule(abc.ABC):
    """A time-varying arrival rate λ(t), in requests per second."""

    @abc.abstractmethod
    def rate(self, t: float) -> float:
        """The instantaneous arrival rate at time ``t``."""

    @abc.abstractmethod
    def max_rate(self, start: float, end: float) -> float:
        """An upper bound on the rate over ``[start, end]`` (for thinning)."""

    @property
    @abc.abstractmethod
    def end_time(self) -> Optional[float]:
        """Time after which the rate is zero forever (``None`` = never ends)."""

    def rate_many(self, times: np.ndarray) -> np.ndarray:
        """Vectorized λ(t) for an array of times.

        The base implementation loops over :meth:`rate`; concrete
        schedules override it with a true numpy evaluation so the
        vectorized arrival generator can thin whole candidate batches
        without a Python call per candidate.
        """
        return np.array([self.rate(float(t)) for t in np.asarray(times).ravel()], dtype=float)

    def mean_rate(self, start: float, end: float, samples: int = 1000) -> float:
        """Numerical average of λ(t) over an interval (for tests and reports)."""
        if end <= start:
            raise ValueError("end must exceed start")
        ts = np.linspace(start, end, samples, endpoint=False)
        return float(np.mean([self.rate(float(t)) for t in ts]))

    def expected_arrivals(self, start: float, end: float, samples: int = 1000) -> float:
        """Approximate ∫λ(t)dt over an interval."""
        return self.mean_rate(start, end, samples) * (end - start)


@dataclass(frozen=True)
class StaticRate(RateSchedule):
    """A constant arrival rate, optionally ending at ``duration`` seconds."""

    value: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the rate and duration."""
        if self.value < 0:
            raise ValueError("rate must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive")

    def rate(self, t: float) -> float:
        """The instantaneous rate at time ``t``."""
        if t < 0:
            return 0.0
        if self.duration is not None and t >= self.duration:
            return 0.0
        return self.value

    def max_rate(self, start: float, end: float) -> float:
        """Upper bound on the rate over ``[start, end]``."""
        return self.value

    def rate_many(self, times: np.ndarray) -> np.ndarray:
        """Vectorized λ(t) evaluation."""
        times = np.asarray(times, dtype=float)
        live = times >= 0
        if self.duration is not None:
            live &= times < self.duration
        return np.where(live, self.value, 0.0)

    @property
    def end_time(self) -> Optional[float]:
        """Time after which the rate is zero forever (``None`` = never)."""
        return self.duration


class StepSchedule(RateSchedule):
    """Piecewise-constant rate: the paper's "discrete change" mode.

    Parameters
    ----------
    steps:
        ``(start_time, rate)`` pairs sorted by time; each rate holds from
        its start time until the next step.
    duration:
        Optional end of the workload (rate is zero afterwards).
    """

    def __init__(self, steps: Sequence[Tuple[float, float]], duration: Optional[float] = None) -> None:
        """Validate and index the ``(time, rate)`` steps."""
        if not steps:
            raise ValueError("at least one step is required")
        ordered = sorted((float(t), float(r)) for t, r in steps)
        if any(r < 0 for _, r in ordered):
            raise ValueError("rates must be non-negative")
        self._times = [t for t, _ in ordered]
        self._rates = [r for _, r in ordered]
        # ndarray views for rate_many, which sits on the vectorized thinning
        # hot path — rebuilding them per call would scale with the step count
        self._times_arr = np.asarray(self._times)
        self._rates_arr = np.asarray(self._rates)
        self._duration = duration

    def rate(self, t: float) -> float:
        """The instantaneous rate at time ``t``."""
        if t < self._times[0]:
            return 0.0
        if self._duration is not None and t >= self._duration:
            return 0.0
        index = bisect.bisect_right(self._times, t) - 1
        return self._rates[index]

    def rate_many(self, times: np.ndarray) -> np.ndarray:
        """Vectorized λ(t) evaluation."""
        times = np.asarray(times, dtype=float)
        indices = np.searchsorted(self._times_arr, times, side="right") - 1
        rates = self._rates_arr[np.clip(indices, 0, None)]
        dead = indices < 0
        if self._duration is not None:
            dead |= times >= self._duration
        return np.where(dead, 0.0, rates)

    def max_rate(self, start: float, end: float) -> float:
        """Upper bound on the rate over ``[start, end]``."""
        relevant = [self.rate(start)]
        for t, r in zip(self._times, self._rates):
            if start <= t <= end:
                relevant.append(r)
        return max(relevant) if relevant else 0.0

    @property
    def end_time(self) -> Optional[float]:
        """Time after which the rate is zero forever (``None`` = never)."""
        return self._duration

    @property
    def steps(self) -> List[Tuple[float, float]]:
        """The ``(time, rate)`` steps (a copy)."""
        return list(zip(self._times, self._rates))

    @classmethod
    def staircase(
        cls,
        rates: Sequence[float],
        step_duration: float,
        start: float = 0.0,
    ) -> "StepSchedule":
        """Equal-duration steps through ``rates`` — e.g. 5→30→5 req/s in Figure 6."""
        if step_duration <= 0:
            raise ValueError("step_duration must be positive")
        steps = [(start + i * step_duration, rate) for i, rate in enumerate(rates)]
        return cls(steps, duration=start + len(rates) * step_duration)


class RampSchedule(RateSchedule):
    """Piecewise-linear rate: the paper's "continuous change" mode.

    Parameters
    ----------
    points:
        ``(time, rate)`` knots; the rate is linearly interpolated between
        consecutive knots and constant outside the knot range (until
        ``duration``).
    """

    def __init__(self, points: Sequence[Tuple[float, float]], duration: Optional[float] = None) -> None:
        """Validate and sort the interpolation knots."""
        if len(points) < 2:
            raise ValueError("at least two points are required")
        ordered = sorted((float(t), float(r)) for t, r in points)
        if any(r < 0 for _, r in ordered):
            raise ValueError("rates must be non-negative")
        self._times = np.array([t for t, _ in ordered])
        self._rates = np.array([r for _, r in ordered])
        self._duration = duration

    def rate(self, t: float) -> float:
        """The instantaneous rate at time ``t``."""
        if t < 0:
            return 0.0
        if self._duration is not None and t >= self._duration:
            return 0.0
        return float(np.interp(t, self._times, self._rates))

    def rate_many(self, times: np.ndarray) -> np.ndarray:
        """Vectorized λ(t) evaluation."""
        times = np.asarray(times, dtype=float)
        rates = np.interp(times, self._times, self._rates)
        dead = times < 0
        if self._duration is not None:
            dead |= times >= self._duration
        return np.where(dead, 0.0, rates)

    def max_rate(self, start: float, end: float) -> float:
        """Upper bound on the rate over ``[start, end]``."""
        candidates = [self.rate(start), self.rate(end)]
        for t, r in zip(self._times, self._rates):
            if start <= t <= end:
                candidates.append(float(r))
        return max(candidates)

    @property
    def end_time(self) -> Optional[float]:
        """Time after which the rate is zero forever (``None`` = never)."""
        return self._duration


class TraceSchedule(RateSchedule):
    """Replay of per-interval invocation counts (e.g. Azure per-minute traces).

    Each count covers one interval of ``interval`` seconds; the rate
    during that interval is ``count / interval``.
    """

    def __init__(self, counts: Sequence[float], interval: float = 60.0, start: float = 0.0) -> None:
        """Validate the per-interval counts."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        counts_arr = np.asarray(counts, dtype=float)
        if counts_arr.ndim != 1 or counts_arr.size == 0:
            raise ValueError("counts must be a non-empty 1-D sequence")
        if (counts_arr < 0).any():
            raise ValueError("counts must be non-negative")
        self._counts = counts_arr
        self.interval = float(interval)
        self.start = float(start)

    def rate(self, t: float) -> float:
        """The instantaneous rate at time ``t``."""
        offset = t - self.start
        if offset < 0:
            return 0.0
        index = int(offset // self.interval)
        if index >= self._counts.size:
            return 0.0
        return float(self._counts[index] / self.interval)

    def rate_many(self, times: np.ndarray) -> np.ndarray:
        """Vectorized λ(t) evaluation."""
        offsets = np.asarray(times, dtype=float) - self.start
        indices = np.floor_divide(offsets, self.interval).astype(int)
        dead = (offsets < 0) | (indices >= self._counts.size)
        rates = self._counts[np.clip(indices, 0, self._counts.size - 1)] / self.interval
        return np.where(dead, 0.0, rates)

    def max_rate(self, start: float, end: float) -> float:
        """Upper bound on the rate over ``[start, end]``."""
        i0 = max(0, int((start - self.start) // self.interval))
        i1 = min(self._counts.size - 1, int((end - self.start) // self.interval))
        if i1 < i0:
            return 0.0
        return float(self._counts[i0 : i1 + 1].max() / self.interval)

    @property
    def end_time(self) -> Optional[float]:
        """Time after which the trace is exhausted."""
        return self.start + self._counts.size * self.interval

    @property
    def counts(self) -> np.ndarray:
        """The per-interval counts (a copy)."""
        return self._counts.copy()

    def total_invocations(self) -> float:
        """Total invocation count over the whole trace."""
        return float(self._counts.sum())


class CompositeSchedule(RateSchedule):
    """The sum of several schedules (e.g. a base load plus bursts)."""

    def __init__(self, schedules: Sequence[RateSchedule]) -> None:
        """Validate and store the child schedules."""
        if not schedules:
            raise ValueError("at least one schedule is required")
        self._schedules = list(schedules)

    def rate(self, t: float) -> float:
        """The instantaneous rate at time ``t`` (sum of the children)."""
        return sum(s.rate(t) for s in self._schedules)

    def rate_many(self, times: np.ndarray) -> np.ndarray:
        """Vectorized λ(t) evaluation (sum of the children)."""
        times = np.asarray(times, dtype=float)
        total = np.zeros_like(times)
        for schedule in self._schedules:
            total += schedule.rate_many(times)
        return total

    def max_rate(self, start: float, end: float) -> float:
        """Upper bound on the rate over ``[start, end]`` (sum of bounds)."""
        return sum(s.max_rate(start, end) for s in self._schedules)

    @property
    def end_time(self) -> Optional[float]:
        """Latest child end time (``None`` if any child never ends)."""
        ends = [s.end_time for s in self._schedules]
        if any(e is None for e in ends):
            return None
        return max(ends)  # type: ignore[arg-type]


__all__ = [
    "RateSchedule",
    "StaticRate",
    "StepSchedule",
    "RampSchedule",
    "TraceSchedule",
    "CompositeSchedule",
]
