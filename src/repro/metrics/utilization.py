"""Cluster utilisation tracking.

The paper reports system utilisation as the fraction of cluster CPU
allocated to function containers, time-averaged over the experiment —
e.g. 78.2 % under the termination policy vs. 83.2 % under deflation in
the two-function overload scenario (§6.6), and 87.7 % vs. 93 % in the
Azure-trace scenario (§6.7).  :class:`UtilizationTracker` samples the
allocated fraction over time and computes exactly that time-weighted
average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


def time_weighted_mean(samples: Sequence[Tuple[float, float]], horizon: Optional[float] = None) -> float:
    """Time-weighted mean of piecewise-constant samples ``(time, value)``.

    Each value is assumed to hold from its timestamp until the next
    sample (or until ``horizon`` for the last one).
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1 and horizon is None:
        return float(ordered[0][1])
    end = horizon if horizon is not None else ordered[-1][0]
    total_time = 0.0
    weighted = 0.0
    for i, (t, value) in enumerate(ordered):
        t_next = ordered[i + 1][0] if i + 1 < len(ordered) else end
        span = max(0.0, t_next - t)
        weighted += value * span
        total_time += span
    if total_time <= 0:
        return float(ordered[-1][1])
    return weighted / total_time


@dataclass
class UtilizationSample:
    """One utilisation observation."""

    time: float
    allocated_cpu: float
    total_cpu: float

    @property
    def fraction(self) -> float:
        """Allocated fraction of total CPU."""
        return self.allocated_cpu / self.total_cpu if self.total_cpu else 0.0


class UtilizationTracker:
    """Samples and aggregates cluster CPU utilisation over time."""

    def __init__(self) -> None:
        """Start with no samples."""
        self._samples: List[UtilizationSample] = []

    def record(self, time: float, allocated_cpu: float, total_cpu: float) -> None:
        """Record one sample of allocated vs. total CPU.

        ``total_cpu`` may be zero — a cluster whose every node has
        failed (fault injection) has no capacity, and the sample records
        utilisation 0 rather than crashing the epoch loop.
        """
        if total_cpu < 0:
            raise ValueError("total_cpu must be non-negative")
        if allocated_cpu < 0:
            raise ValueError("allocated_cpu must be non-negative")
        if self._samples and time < self._samples[-1].time - 1e-9:
            raise ValueError("samples must be recorded in time order")
        self._samples.append(UtilizationSample(time, allocated_cpu, total_cpu))

    @property
    def samples(self) -> List[UtilizationSample]:
        """All recorded samples (a copy)."""
        return list(self._samples)

    def mean_utilization(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Time-weighted mean allocated fraction over ``[start, end]``."""
        window = [(s.time, s.fraction) for s in self._samples if s.time >= start and (end is None or s.time <= end)]
        if not window and self._samples:
            # fall back to the last sample before the window
            earlier = [s for s in self._samples if s.time < start]
            if earlier:
                window = [(start, earlier[-1].fraction)]
        return time_weighted_mean(window, horizon=end)

    def peak_utilization(self) -> float:
        """Highest allocated fraction observed."""
        if not self._samples:
            return 0.0
        return max(s.fraction for s in self._samples)

    def unused_capacity_fraction(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Time-weighted mean *unallocated* fraction — the grey area in Figures 8/9."""
        return 1.0 - self.mean_utilization(start, end)


__all__ = ["UtilizationTracker", "UtilizationSample", "time_weighted_mean"]
