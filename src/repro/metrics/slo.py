"""SLO accounting.

An SLO in this system is "percentile ``p`` of requests must start (or
finish) within deadline ``d``".  :func:`slo_report` evaluates whether a
set of completed requests met that target, per function, using either
the waiting-time interpretation (the paper's default: requests must
*start* being processed by the deadline) or the response-time
interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.sim.request import Request, RequestStatus


@dataclass(frozen=True)
class SloReport:
    """SLO attainment for one function."""

    function_name: str
    deadline: float
    target_percentile: float
    total_requests: int
    completed_requests: int
    dropped_requests: int
    within_deadline: int
    attainment: float
    satisfied: bool

    def as_dict(self) -> dict:
        """Plain-dict view for tabular output."""
        return {
            "function": self.function_name,
            "deadline": self.deadline,
            "target": self.target_percentile,
            "total": self.total_requests,
            "completed": self.completed_requests,
            "dropped": self.dropped_requests,
            "within_deadline": self.within_deadline,
            "attainment": self.attainment,
            "satisfied": self.satisfied,
        }


def slo_report(
    requests: Iterable[Request],
    deadlines: Mapping[str, float],
    target_percentile: float = 0.95,
    on_waiting_time: bool = True,
    warmup: float = 0.0,
    count_drops_as_violations: bool = True,
) -> Dict[str, SloReport]:
    """Evaluate SLO attainment per function.

    Parameters
    ----------
    requests:
        Requests observed during the experiment (any status).
    deadlines:
        Relative SLO deadline per function name (seconds).
    target_percentile:
        Required fraction of requests meeting the deadline.
    on_waiting_time:
        If true, a request "meets" the SLO when its *waiting* time is at
        most the deadline; otherwise its response time is used.
    warmup:
        Requests arriving before this time are excluded.
    count_drops_as_violations:
        Dropped / timed-out requests count against attainment when true.
    """
    if not 0 < target_percentile < 1:
        raise ValueError("target_percentile must be in (0, 1)")
    per_function: Dict[str, Dict[str, int]] = {}
    for request in requests:
        if request.arrival_time < warmup:
            continue
        name = request.function_name
        if name not in deadlines:
            continue
        stats = per_function.setdefault(
            name, {"total": 0, "completed": 0, "dropped": 0, "within": 0}
        )
        stats["total"] += 1
        if request.status is RequestStatus.COMPLETED:
            stats["completed"] += 1
            metric = request.waiting_time if on_waiting_time else request.response_time
            if metric is not None and metric <= deadlines[name] + 1e-12:
                stats["within"] += 1
        elif request.status in (RequestStatus.DROPPED, RequestStatus.TIMED_OUT):
            stats["dropped"] += 1

    reports: Dict[str, SloReport] = {}
    for name, stats in per_function.items():
        denominator = stats["total"] if count_drops_as_violations else stats["completed"]
        attainment = stats["within"] / denominator if denominator else 1.0
        reports[name] = SloReport(
            function_name=name,
            deadline=deadlines[name],
            target_percentile=target_percentile,
            total_requests=stats["total"],
            completed_requests=stats["completed"],
            dropped_requests=stats["dropped"],
            within_deadline=stats["within"],
            attainment=attainment,
            satisfied=attainment >= target_percentile,
        )
    return reports


def overall_attainment(reports: Mapping[str, SloReport]) -> float:
    """Request-weighted SLO attainment across all functions."""
    total = sum(r.total_requests for r in reports.values())
    if total == 0:
        return 1.0
    within = sum(r.within_deadline for r in reports.values())
    return within / total


__all__ = ["SloReport", "slo_report", "overall_attainment"]
