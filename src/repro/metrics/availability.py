"""Availability and recovery-time accounting for fault-injection runs.

The SLO metrics of the healthy scenarios (waiting-time percentiles,
attainment) say nothing about what happens when capacity disappears.
:class:`AvailabilityTracker` adds the two fault-centric views the
recovery experiments report:

* **capacity availability** — the time-weighted mean of
  ``available_cpu / configured_cpu`` over the run, where *configured*
  is the cluster as specced and *available* excludes failed nodes.  A
  run with no failures scores exactly ``1.0``.
* **recovery records** — one :class:`RecoveryRecord` per node failure,
  tracking when the *controller* (not the node) restored service: the
  first time every function that lost warm capacity is back at its
  pre-failure warm-container count.  That is the paper-relevant number:
  it measures the re-provisioning loop, not the hardware.

Everything here is driven by the
:class:`~repro.faults.injector.FaultInjector`; the tracker itself is
pure bookkeeping and never touches the engine, so it adds no events and
cannot perturb determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


@dataclass
class RecoveryRecord:
    """The lifecycle of one failure, from outage to restored service.

    ``recovery_time`` is ``None`` while the controller has not yet
    restored every affected function's pre-failure warm-container count
    (or forever, if the capacity to do so no longer exists).

    ``scope`` distinguishes the two failure granularities:

    * ``"node"`` (the default, and the historical behaviour) — one node
      failed; recovery means every affected function is back at its
      pre-failure cluster-wide warm count.
    * ``"site"`` — a whole site went dark (federation blackouts).  A
      site may *rejoin with a different node set* than it lost, so the
      pre-failure warm targets are clamped proportionally to the
      rejoined capacity when :meth:`AvailabilityTracker.site_rejoined`
      fires — otherwise a site that comes back smaller could never
      reach its old warm counts and the record would dangle open
      forever.
    """

    node: str
    fail_at: float
    recover_at: Optional[float]
    containers_lost: int
    #: per-function warm-container counts to restore (cluster-wide)
    warm_targets: Dict[str, int]
    recovery_time: Optional[float] = None
    #: failure granularity: ``"node"`` (default) or ``"site"``
    scope: str = "node"

    @property
    def recovered(self) -> bool:
        """Whether service was fully restored after this failure."""
        return self.recovery_time is not None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (used in the scenario results ``faults`` group).

        ``scope`` is emitted only when non-default, so every node-scoped
        record — and therefore every fig10-era envelope — keeps its
        exact historical bytes.
        """
        data = {
            "node": self.node,
            "fail_at": self.fail_at,
            "recover_at": self.recover_at,
            "containers_lost": self.containers_lost,
            "recovery_time": self.recovery_time,
        }
        if self.scope != "node":
            data["scope"] = self.scope
        return data


class AvailabilityTracker:
    """Time-weighted capacity availability plus per-failure recovery records.

    The tracker is a step function: :meth:`record_capacity` appends a
    ``(time, fraction)`` breakpoint whenever node state changes, and
    :meth:`mean_availability` integrates the steps over ``[0, end]``.
    Before the first breakpoint the cluster is fully available.
    """

    def __init__(self) -> None:
        """Start fully available with no failure history."""
        self._breakpoints: List[tuple] = []  # (time, available fraction)
        self.records: List[RecoveryRecord] = []

    # ------------------------------------------------------------------
    # Capacity steps
    # ------------------------------------------------------------------
    def record_capacity(self, time: float, available_cpu: float,
                        configured_cpu: float) -> None:
        """Record a capacity step (called on every node failure/recovery)."""
        fraction = available_cpu / configured_cpu if configured_cpu > 0 else 0.0
        self._breakpoints.append((float(time), max(0.0, min(1.0, fraction))))

    def mean_availability(self, end_time: float) -> float:
        """Time-weighted mean available-capacity fraction over ``[0, end_time]``."""
        if end_time <= 0 or not self._breakpoints:
            return 1.0
        total = 0.0
        previous_time = 0.0
        previous_fraction = 1.0
        for time, fraction in self._breakpoints:
            clamped = min(max(time, 0.0), end_time)
            total += previous_fraction * (clamped - previous_time)
            previous_time = clamped
            previous_fraction = fraction
        total += previous_fraction * max(0.0, end_time - previous_time)
        return total / end_time

    # ------------------------------------------------------------------
    # Recovery records
    # ------------------------------------------------------------------
    def open_record(self, record: RecoveryRecord) -> None:
        """Register a node failure whose recovery should be tracked."""
        self.records.append(record)

    def open_records(self) -> List[RecoveryRecord]:
        """Failures whose service has not yet been restored."""
        return [r for r in self.records if not r.recovered]

    # ------------------------------------------------------------------
    # Site-scoped records (federation blackouts)
    # ------------------------------------------------------------------
    def open_site_record(self, site: str, fail_at: float,
                         containers_lost: int,
                         warm_targets: Dict[str, int]) -> RecoveryRecord:
        """Register a whole-site blackout whose recovery should be tracked.

        ``warm_targets`` captures the pre-blackout warm counts; an empty
        mapping (the site held no warm capacity) means there is nothing
        to restore, so the recovery time is zero by definition.
        """
        record = RecoveryRecord(
            node=site,
            fail_at=fail_at,
            recover_at=None,
            containers_lost=containers_lost,
            warm_targets=dict(warm_targets),
            scope="site",
        )
        if not record.warm_targets:
            record.recovery_time = 0.0
        self.records.append(record)
        return record

    def site_rejoined(self, site: str, recover_at: float,
                      capacity_ratio: float) -> Optional[RecoveryRecord]:
        """Mark a blacked-out site as rejoined, clamping its warm targets.

        A site may rejoin with a *different* node set than it lost
        (fewer nodes, smaller capacity).  Holding it to its pre-failure
        warm counts would leave the record dangling open forever, so
        each target is clamped to ``min(target, max(1, target * ratio))``
        — proportional to the capacity that actually came back, but
        never below one warm container per affected function.  A ratio
        of zero (nothing rejoined) leaves the record open: the site
        genuinely never recovered.
        """
        for record in self.records:
            if (record.scope != "site" or record.node != site
                    or record.recovered or record.recover_at is not None):
                continue
            record.recover_at = float(recover_at)
            if capacity_ratio <= 0.0:
                record.recover_at = None
                return None
            if capacity_ratio < 1.0:
                record.warm_targets = {
                    name: min(target, max(1, int(target * capacity_ratio)))
                    for name, target in record.warm_targets.items()
                }
            return record
        return None

    def check_site_recovery(self, site: str, now: float,
                            warm_count_of: Callable[[str], int]) -> bool:
        """Close site records whose (clamped) warm targets are all met.

        Called from the warm-container hook of the rejoined site's
        cluster.  ``warm_count_of`` maps a function name to its current
        site-wide warm count — deliberately node-set-agnostic, so any
        mix of rejoined nodes satisfies the target.  Returns ``True``
        if at least one record closed.
        """
        closed = False
        for record in self.records:
            if (record.scope != "site" or record.node != site
                    or record.recovered or record.recover_at is None):
                continue
            if all(warm_count_of(name) >= target
                   for name, target in record.warm_targets.items()):
                record.recovery_time = now - record.fail_at
                closed = True
        return closed

    def recovery_times(self) -> List[float]:
        """Recovery durations of the failures that did recover, in order."""
        return [r.recovery_time for r in self.records if r.recovery_time is not None]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the failure/recovery history."""
        times = self.recovery_times()
        return {
            "recoveries": [r.as_dict() for r in self.records],
            "mean_recovery_time": sum(times) / len(times) if times else None,
            "max_recovery_time": max(times) if times else None,
        }


__all__ = ["AvailabilityTracker", "RecoveryRecord"]
