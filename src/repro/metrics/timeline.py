"""Per-function allocation timelines.

Figures 6, 8, and 9 of the paper are time series of how much capacity
each function holds (number of containers, or CPU).  The controller
pushes a point per epoch into an :class:`AllocationTimeline`, from which
the experiment harness extracts the plotted series and summary
statistics (e.g. how often a function dipped below its fair share).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TimelinePoint:
    """Allocation of one function at one instant."""

    time: float
    function_name: str
    containers: int
    cpu: float
    desired_containers: Optional[int] = None
    arrival_rate: Optional[float] = None


class AllocationTimeline:
    """A collection of :class:`TimelinePoint` keyed by function."""

    def __init__(self) -> None:
        """Start with no recorded points."""
        self._points: Dict[str, List[TimelinePoint]] = {}

    def record(self, point: TimelinePoint) -> None:
        """Append one point (points must arrive in time order per function)."""
        series = self._points.setdefault(point.function_name, [])
        if series and point.time < series[-1].time - 1e-9:
            raise ValueError("timeline points must be recorded in time order")
        series.append(point)

    def functions(self) -> List[str]:
        """Functions that have at least one point."""
        return sorted(self._points)

    def series(self, function_name: str) -> List[TimelinePoint]:
        """All points of a function (a copy)."""
        return list(self._points.get(function_name, []))

    def cpu_series(self, function_name: str) -> Tuple[List[float], List[float]]:
        """``(times, cpu)`` arrays for plotting a function's CPU allocation."""
        points = self._points.get(function_name, [])
        return [p.time for p in points], [p.cpu for p in points]

    def container_series(self, function_name: str) -> Tuple[List[float], List[int]]:
        """``(times, container counts)`` arrays for plotting."""
        points = self._points.get(function_name, [])
        return [p.time for p in points], [p.containers for p in points]

    def cpu_at(self, function_name: str, time: float) -> float:
        """The function's CPU allocation at (the last point not after) ``time``."""
        points = self._points.get(function_name, [])
        best = 0.0
        for point in points:
            if point.time <= time + 1e-9:
                best = point.cpu
            else:
                break
        return best

    def total_cpu_series(self) -> Tuple[List[float], List[float]]:
        """Cluster-wide allocated CPU over the union of all sample times."""
        times = sorted({p.time for series in self._points.values() for p in series})
        totals = [
            sum(self.cpu_at(fn, t) for fn in self._points) for t in times
        ]
        return times, totals

    def fraction_below(
        self, function_name: str, threshold_cpu: float, start: float = 0.0, end: Optional[float] = None
    ) -> float:
        """Fraction of sampled epochs in which the function held less CPU than ``threshold_cpu``.

        Used to verify the fair-share guarantee: under overload this should
        be (close to) zero when ``threshold_cpu`` is the guaranteed share.
        """
        points = [
            p for p in self._points.get(function_name, [])
            if p.time >= start and (end is None or p.time <= end)
        ]
        if not points:
            return 0.0
        below = sum(1 for p in points if p.cpu < threshold_cpu - 1e-9)
        return below / len(points)

    def mean_cpu(self, function_name: str, start: float = 0.0, end: Optional[float] = None) -> float:
        """Unweighted mean CPU allocation of a function over the sampled epochs."""
        points = [
            p for p in self._points.get(function_name, [])
            if p.time >= start and (end is None or p.time <= end)
        ]
        if not points:
            return 0.0
        return sum(p.cpu for p in points) / len(points)


__all__ = ["TimelinePoint", "AllocationTimeline"]
