"""Measurement: per-request records, percentiles, SLO accounting, utilisation.

The evaluation section of the paper reports three families of numbers,
all of which this package computes from the simulation:

* waiting-time percentiles per function (Figures 3 and 4),
* per-function allocation timelines and cluster utilisation under the
  two reclamation policies (Figures 6, 8, 9),
* SLO violation rates and container-operation churn,
* availability and recovery-time accounting for fault-injection runs
  (the Figure 10 recovery experiment).
"""

from repro.metrics.availability import AvailabilityTracker, RecoveryRecord
from repro.metrics.collector import MetricsCollector, EpochSnapshot, FunctionEpochStats
from repro.metrics.percentiles import percentile, summarize_waiting_times, WaitingTimeSummary
from repro.metrics.slo import SloReport, slo_report
from repro.metrics.streaming import (
    P2Quantile,
    ReservoirQuantiles,
    StreamingSummary,
    UnsafeSketchError,
)
from repro.metrics.utilization import UtilizationTracker, time_weighted_mean
from repro.metrics.timeline import AllocationTimeline, TimelinePoint

__all__ = [
    "AvailabilityTracker",
    "RecoveryRecord",
    "UnsafeSketchError",
    "MetricsCollector",
    "P2Quantile",
    "ReservoirQuantiles",
    "StreamingSummary",
    "EpochSnapshot",
    "FunctionEpochStats",
    "percentile",
    "summarize_waiting_times",
    "WaitingTimeSummary",
    "SloReport",
    "slo_report",
    "UtilizationTracker",
    "time_weighted_mean",
    "AllocationTimeline",
    "TimelinePoint",
]
