"""The central metrics collector the controller and experiments write into.

One :class:`MetricsCollector` instance accompanies each simulation run.
It accumulates every request (for waiting-time and SLO analysis), an
allocation timeline point per function per epoch (for the Figure 6/8/9
style plots), utilisation samples, and free-form counters (cold starts,
drops, container operations).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.metrics.percentiles import WaitingTimeSummary, summarize_waiting_times
from repro.metrics.slo import SloReport, slo_report
from repro.metrics.streaming import StreamingSummary
from repro.metrics.timeline import AllocationTimeline, TimelinePoint
from repro.metrics.utilization import UtilizationTracker
from repro.sim.request import Request, RequestStatus


@dataclass(frozen=True)
class FunctionEpochStats:
    """Per-function statistics captured at the end of one controller epoch."""

    function_name: str
    containers: int
    cpu: float
    desired_containers: int
    arrival_rate_estimate: float
    service_rate_estimate: float


@dataclass(frozen=True)
class EpochSnapshot:
    """Cluster-wide snapshot captured at the end of one controller epoch."""

    time: float
    overloaded: bool
    total_cpu: float
    allocated_cpu: float
    functions: Dict[str, FunctionEpochStats] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Allocated fraction of cluster CPU at this epoch."""
        return self.allocated_cpu / self.total_cpu if self.total_cpu else 0.0


class MetricsCollector:
    """Accumulates everything an experiment needs to report.

    Parameters
    ----------
    streaming_percentiles:
        Opt-in constant-memory mode for very long runs: completed
        requests feed streaming summaries
        (:class:`~repro.metrics.streaming.StreamingSummary`, one global
        plus one per function) instead of relying on the stored request
        list for percentile queries.  :meth:`waiting_summary` then
        answers from the streaming state (``warmup`` is not supported in
        this mode).  Default off — behaviour is unchanged.
    store_requests:
        Whether to keep every :class:`Request` object.  Turn off
        together with ``streaming_percentiles=True`` so a multi-million
        request replay holds O(1) metric state instead of every request;
        :meth:`completed_requests` / :meth:`dropped_requests` /
        :meth:`slo` then see only the requests recorded while storage
        was on (i.e. none).
    percentile_sketch:
        Which quantile sketch the streaming summaries use:
        ``"reservoir"`` (the default — safe for waiting times, which
        carry a heavy zero atom) or ``"p2"`` (five-marker P², for
        continuous-valued streams only).  Selecting ``"p2"`` for a
        zero-atom stream does not silently return stranded estimates:
        percentile queries raise
        :class:`~repro.metrics.streaming.UnsafeSketchError` once the
        zero fraction crosses the documented threshold.
    """

    def __init__(
        self,
        streaming_percentiles: bool = False,
        store_requests: bool = True,
        percentile_sketch: str = "reservoir",
    ) -> None:
        """Choose the storage mode: full request objects, constant-memory streaming summaries (see :mod:`repro.metrics.streaming` for the P² zero-wait caveat), or both."""
        if not store_requests and not streaming_percentiles:
            raise ValueError(
                "store_requests=False requires streaming_percentiles=True, "
                "otherwise no waiting-time statistics would survive"
            )
        if percentile_sketch not in ("reservoir", "p2"):
            raise ValueError(
                f"unknown percentile_sketch {percentile_sketch!r}; "
                "valid: 'reservoir', 'p2'"
            )
        self._requests: List[Request] = []
        self._deferred_fill: Optional[Callable[[], List[Request]]] = None
        self.timeline = AllocationTimeline()
        self.utilization = UtilizationTracker()
        self.epochs: List[EpochSnapshot] = []
        self.counters: Counter = Counter()
        self.streaming_percentiles = bool(streaming_percentiles)
        self.store_requests = bool(store_requests)
        self.percentile_sketch = percentile_sketch
        self._streaming_all: Optional[StreamingSummary] = (
            StreamingSummary(sketch=percentile_sketch)
            if streaming_percentiles else None
        )
        self._streaming_by_function: Dict[str, StreamingSummary] = {}

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    @property
    def requests(self) -> List[Request]:
        """Every recorded request, materializing a deferred columnar list once.

        The columnar data plane registers a fill callback via
        :meth:`defer_requests` instead of appending per request; the
        first access reconstructs the full list (and drops the
        callback), so analysis code is oblivious to which data plane
        produced the run.
        """
        fill = self._deferred_fill
        if fill is not None:
            self._deferred_fill = None
            self._requests = fill()
        return self._requests

    @requests.setter
    def requests(self, value: List[Request]) -> None:
        """Replace the stored request list (drops any pending deferred fill)."""
        self._deferred_fill = None
        self._requests = value

    def defer_requests(self, fill: Callable[[], List[Request]]) -> None:
        """Register a callback that reconstructs the request list on demand.

        Used by the columnar kernel so the hot loop never appends request
        objects; any previously stored requests are superseded (the
        kernel's fill covers the whole run).
        """
        self._requests = []
        self._deferred_fill = fill

    def record_request(self, request: Request) -> None:
        """Register a request (typically at arrival; its fields keep updating)."""
        if self.store_requests:
            self.requests.append(request)
        self.counters["arrivals"] += 1

    def record_completion(self, request: Request) -> None:
        """Count one completed request (the request is already registered)."""
        self.counters["completions"] += 1
        if request.cold_start:
            self.counters["cold_starts"] += 1
        if self._streaming_all is not None:
            wait = request.waiting_time
            if wait is not None:
                self._streaming_all.add(wait)
                per_function = self._streaming_by_function.get(request.function_name)
                if per_function is None:
                    per_function = self._streaming_by_function[request.function_name] = (
                        StreamingSummary(sketch=self.percentile_sketch)
                    )
                per_function.add(wait)

    # -- columnar folds (epoch-granular, from the vectorized data plane) --
    def fold_arrivals(self, count: int) -> None:
        """Count ``count`` arrivals at once (columnar plane's batched fold)."""
        self.counters["arrivals"] += count

    def fold_completion(self, function_name: str, waiting_time: float,
                        cold_start: bool) -> None:
        """Count one completion from columnar state (no request object).

        Field-for-field equivalent of :meth:`record_completion`; used
        when streaming summaries (or a policy's per-completion hook)
        need the per-request values in completion order.
        """
        self.counters["completions"] += 1
        if cold_start:
            self.counters["cold_starts"] += 1
        if self._streaming_all is not None:
            self._streaming_all.add(waiting_time)
            per_function = self._streaming_by_function.get(function_name)
            if per_function is None:
                per_function = self._streaming_by_function[function_name] = (
                    StreamingSummary(sketch=self.percentile_sketch)
                )
            per_function.add(waiting_time)

    def fold_completions_bulk(self, count: int, cold_starts: int) -> None:
        """Count a whole batch of completions at once (no streaming mode)."""
        self.counters["completions"] += count
        if cold_starts:
            self.counters["cold_starts"] += cold_starts

    def record_drop(self, count: int = 1) -> None:
        """Count dropped requests (terminated containers, failed nodes)."""
        self.counters["drops"] += count

    def increment(self, counter: str, count: int = 1) -> None:
        """Bump an arbitrary named counter (container ops, burst switches, ...)."""
        self.counters[counter] += count

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    def record_epoch(self, snapshot: EpochSnapshot) -> None:
        """Store an epoch snapshot and mirror it into timeline/utilisation."""
        self.epochs.append(snapshot)
        self.utilization.record(snapshot.time, snapshot.allocated_cpu, snapshot.total_cpu)
        for stats in snapshot.functions.values():
            self.timeline.record(
                TimelinePoint(
                    time=snapshot.time,
                    function_name=stats.function_name,
                    containers=stats.containers,
                    cpu=stats.cpu,
                    desired_containers=stats.desired_containers,
                    arrival_rate=stats.arrival_rate_estimate,
                )
            )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def completed_requests(self, function_name: Optional[str] = None) -> List[Request]:
        """All completed requests, optionally restricted to one function."""
        return [
            r
            for r in self.requests
            if r.status is RequestStatus.COMPLETED
            and (function_name is None or r.function_name == function_name)
        ]

    def dropped_requests(self, function_name: Optional[str] = None) -> List[Request]:
        """All dropped or timed-out requests."""
        return [
            r
            for r in self.requests
            if r.status in (RequestStatus.DROPPED, RequestStatus.TIMED_OUT)
            and (function_name is None or r.function_name == function_name)
        ]

    def waiting_summary(
        self, function_name: Optional[str] = None, warmup: float = 0.0
    ) -> WaitingTimeSummary:
        """Waiting-time percentiles for (a function's) completed requests.

        In streaming mode the summary comes from the P² estimators
        (constant memory, no warmup filtering); otherwise it is computed
        exactly from the stored requests.
        """
        if self.streaming_percentiles:
            if warmup:
                raise ValueError(
                    "warmup filtering requires stored requests; "
                    "construct the collector with streaming_percentiles=False"
                )
            if function_name is None:
                assert self._streaming_all is not None
                return self._streaming_all.summary()
            per_function = self._streaming_by_function.get(function_name)
            return per_function.summary() if per_function is not None else StreamingSummary().summary()
        return summarize_waiting_times(self.requests, function_name, warmup)

    def slo(
        self,
        deadlines: Mapping[str, float],
        target_percentile: float = 0.95,
        warmup: float = 0.0,
    ) -> Dict[str, SloReport]:
        """SLO attainment per function."""
        return slo_report(self.requests, deadlines, target_percentile, warmup=warmup)

    def mean_utilization(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Time-weighted mean cluster utilisation."""
        return self.utilization.mean_utilization(start, end)

    def throughput(self, function_name: Optional[str] = None) -> int:
        """Number of completed requests."""
        return len(self.completed_requests(function_name))

    def summary(self, deadlines: Optional[Mapping[str, float]] = None) -> Dict[str, object]:
        """A compact dict summary of the whole run, used by examples and reports."""
        result: Dict[str, object] = {
            "arrivals": self.counters.get("arrivals", 0),
            "completions": self.counters.get("completions", 0),
            "drops": self.counters.get("drops", 0),
            "cold_starts": self.counters.get("cold_starts", 0),
            "epochs": len(self.epochs),
            "mean_utilization": self.mean_utilization(),
        }
        if deadlines:
            reports = self.slo(deadlines)
            result["slo"] = {name: report.attainment for name, report in reports.items()}
        return result


__all__ = ["MetricsCollector", "EpochSnapshot", "FunctionEpochStats"]
