"""Waiting-time and response-time percentile summaries.

The paper's model-validation experiments (Figures 3 and 4) report the
95th percentile of the measured waiting time against the SLO deadline,
along with box-and-whisker ranges; :func:`summarize_waiting_times`
computes all of those numbers from a list of completed requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.sim.request import Request, RequestStatus


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (``p`` in (0, 1)) of a non-empty sequence.

    Accepts any ndarray, sequence, or iterable of numbers.  An ndarray
    input is used as-is (no copy unless a dtype conversion is needed);
    sequences are converted with a single ``asarray`` pass — the seed
    implementation materialised ``list(values)`` first, copying every
    ndarray or list input twice.
    """
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    if isinstance(values, np.ndarray):
        arr = values if values.dtype == float else values.astype(float)
    else:
        try:
            arr = np.asarray(values, dtype=float)
        except (TypeError, ValueError):
            # a lazy iterable (generator, map, ...): single-pass conversion
            arr = np.fromiter(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sequence")
    return float(np.quantile(arr, p))


@dataclass(frozen=True)
class WaitingTimeSummary:
    """Distributional summary of waiting times (all values in seconds)."""

    count: int
    mean: float
    median: float
    p90: float
    p95: float
    p99: float
    maximum: float
    minimum: float

    def as_dict(self) -> dict:
        """Plain-dict view, convenient for tabular experiment output."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
            "min": self.minimum,
        }


def _empty_summary() -> WaitingTimeSummary:
    """An all-zero summary for functions with no completed requests."""
    return WaitingTimeSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize_waiting_times(
    requests: Iterable[Request],
    function_name: Optional[str] = None,
    warmup: float = 0.0,
) -> WaitingTimeSummary:
    """Summarise the waiting times of completed requests.

    Parameters
    ----------
    requests:
        Any iterable of :class:`~repro.sim.request.Request`.
    function_name:
        Restrict to a single function (``None`` keeps all).
    warmup:
        Ignore requests that arrived before this simulation time, so
        cold-start transients do not pollute steady-state percentiles.
    """
    waits: List[float] = []
    for request in requests:
        if function_name is not None and request.function_name != function_name:
            continue
        if request.arrival_time < warmup:
            continue
        if request.status is not RequestStatus.COMPLETED:
            continue
        wait = request.waiting_time
        if wait is not None:
            waits.append(wait)
    if not waits:
        return _empty_summary()
    arr = np.asarray(waits)
    return WaitingTimeSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.quantile(arr, 0.5)),
        p90=float(np.quantile(arr, 0.90)),
        p95=float(np.quantile(arr, 0.95)),
        p99=float(np.quantile(arr, 0.99)),
        maximum=float(arr.max()),
        minimum=float(arr.min()),
    )


def summarize_response_times(
    requests: Iterable[Request],
    function_name: Optional[str] = None,
    warmup: float = 0.0,
) -> WaitingTimeSummary:
    """Like :func:`summarize_waiting_times` but over end-to-end response times."""
    values: List[float] = []
    for request in requests:
        if function_name is not None and request.function_name != function_name:
            continue
        if request.arrival_time < warmup:
            continue
        if request.status is not RequestStatus.COMPLETED:
            continue
        rt = request.response_time
        if rt is not None:
            values.append(rt)
    if not values:
        return _empty_summary()
    arr = np.asarray(values)
    return WaitingTimeSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.quantile(arr, 0.5)),
        p90=float(np.quantile(arr, 0.90)),
        p95=float(np.quantile(arr, 0.95)),
        p99=float(np.quantile(arr, 0.99)),
        maximum=float(arr.max()),
        minimum=float(arr.min()),
    )


__all__ = ["percentile", "WaitingTimeSummary", "summarize_waiting_times", "summarize_response_times"]
