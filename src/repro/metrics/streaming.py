"""Streaming (constant-memory) percentile estimation for long runs.

The default :class:`~repro.metrics.collector.MetricsCollector` keeps
every :class:`~repro.sim.request.Request` so experiments can slice the
distribution arbitrarily.  For trace replays with millions of requests
that is gigabytes of objects; the collector's opt-in streaming mode
instead feeds each completed request's waiting time into a
:class:`StreamingSummary` — running moments plus a bounded quantile
sketch — and drops the request.

Two sketches are provided:

* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac, CACM 1985):
  five markers per quantile, O(1) memory, piecewise-parabolic marker
  updates.  Excellent for *continuous* distributions, but its local
  updates cannot cross a heavy atom: simulated waiting times are
  typically >50 % exact zeros (requests that started on an idle
  container), and with that much point mass below the tracked quantile
  the marker gets stranded orders of magnitude below the true p95
  (observed on real runs).  Exported for continuous-valued streams.
* :class:`ReservoirQuantiles` — a deterministic fixed-size reservoir
  (Vitter's algorithm R with a seeded stdlib RNG): constant memory,
  exact handling of atoms and arbitrary query quantiles, accuracy
  limited only by sampling error (±~0.3 % of rank at the default 4096
  samples).  This is what :class:`StreamingSummary` uses by default.

:class:`StreamingSummary` can be constructed with ``sketch="p2"`` for
continuous-valued streams where the five-marker footprint matters.  The
zero-wait caveat is then enforced, not just documented: once the
fraction of exact-zero observations reaches
:data:`ZERO_ATOM_UNSAFE_FRACTION`, quantile queries raise
:class:`UnsafeSketchError` instead of silently returning a stranded
marker value.
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.metrics.percentiles import WaitingTimeSummary

#: Zero-observation fraction at which the P² markers are considered
#: stranded for waiting-time-like streams.  The documented failure mode
#: needs a *heavy* atom (>50 % zeros in real runs); 25 % is a
#: conservative trip point well below where the estimate degrades.
ZERO_ATOM_UNSAFE_FRACTION = 0.25


class UnsafeSketchError(RuntimeError):
    """The selected streaming sketch cannot answer safely for this stream.

    Raised (loudly, at query time) when the P² sketch was selected for a
    stream carrying a heavy zero atom — the exact situation the module
    docstring documents as producing silently wrong percentiles.  Switch
    to the default reservoir sketch, which represents atoms with their
    true mass.
    """


class P2Quantile:
    """P² streaming estimator of a single quantile.

    Parameters
    ----------
    p:
        The tracked quantile, in (0, 1) — e.g. 0.95.
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, p: float) -> None:
        """Initialise the five P² markers for quantile ``p``."""
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self.p = float(p)
        self._heights: List[float] = []   # marker heights (the first 5 observations, then q_i)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._count

    def add(self, value: float) -> None:
        """Feed one observation."""
        value = float(value)
        self._count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            if len(heights) == 5:
                heights.sort()
            return

        # locate the cell k such that q[k] <= value < q[k+1]
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= heights[k + 1]:
                k += 1

        positions = self._positions
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._increments[i]

        # adjust the three middle markers with the P2 parabolic formula
        for i in (1, 2, 3):
            n_i = positions[i]
            delta = desired[i] - n_i
            n_prev = positions[i - 1]
            n_next = positions[i + 1]
            if (delta >= 1.0 and n_next - n_i > 1.0) or (delta <= -1.0 and n_prev - n_i < -1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                q_i = heights[i]
                q_prev = heights[i - 1]
                q_next = heights[i + 1]
                # piecewise-parabolic prediction
                candidate = q_i + step / (n_next - n_prev) * (
                    (n_i - n_prev + step) * (q_next - q_i) / (n_next - n_i)
                    + (n_next - n_i - step) * (q_i - q_prev) / (n_i - n_prev)
                )
                if q_prev < candidate < q_next:
                    heights[i] = candidate
                else:  # parabolic prediction left the cell: fall back to linear
                    if step > 0:
                        heights[i] = q_i + step * (q_next - q_i) / (n_next - n_i)
                    else:
                        heights[i] = q_i + step * (q_prev - q_i) / (n_prev - n_i)
                positions[i] = n_i + step

    def value(self) -> float:
        """The current quantile estimate (exact while fewer than 5 samples)."""
        if self._count == 0:
            return 0.0
        heights = self._heights
        if len(heights) < 5:
            ordered = sorted(heights)
            # nearest-rank on the tiny prefix
            rank = min(len(ordered) - 1, max(0, round(self.p * (len(ordered) - 1))))
            return ordered[int(rank)]
        return heights[2]


class ReservoirQuantiles:
    """Deterministic bounded-size uniform sample with quantile queries.

    Algorithm R with a seeded stdlib RNG: every observation is retained
    while the reservoir is filling; afterwards observation ``n`` replaces
    a random resident with probability ``k/n``.  The sample stays sorted
    so quantile queries are a single interpolation.  Unlike P², atoms
    (e.g. the zero-wait spike of idle-container hits) are represented
    with their true mass.
    """

    __slots__ = ("max_samples", "_sorted", "_count", "_rng")

    def __init__(self, max_samples: int = 4096, seed: int = 2029) -> None:
        """Configure the reservoir size and its deterministic RNG seed."""
        if max_samples < 10:
            raise ValueError("max_samples must be at least 10")
        self.max_samples = int(max_samples)
        self._sorted: List[float] = []
        self._count = 0
        self._rng = random.Random(seed)

    @property
    def count(self) -> int:
        """Total observations seen (not the reservoir size)."""
        return self._count

    def add(self, value: float) -> None:
        """Feed one observation."""
        self._count += 1
        if len(self._sorted) < self.max_samples:
            bisect.insort(self._sorted, value)
        elif self._rng.random() * self._count < self.max_samples:
            self._sorted.pop(int(self._rng.random() * len(self._sorted)))
            bisect.insort(self._sorted, value)

    def quantile(self, p: float) -> float:
        """The ``p``-th quantile of the observations seen so far."""
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        if not self._sorted:
            return 0.0
        return float(np.quantile(self._sorted, p))

    def state(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the reservoir for cross-shard merging.

        The snapshot carries the total observation count, the configured
        bound, and the retained (sorted) samples — everything
        :func:`merge_reservoir_states` needs.  ``count == len(samples)``
        means the reservoir never overflowed, i.e. the samples are the
        *exact* multiset of observations.
        """
        return {
            "count": self._count,
            "max_samples": self.max_samples,
            "samples": [float(v) for v in self._sorted],
        }


def merge_reservoir_states(
    states: Iterable[Mapping[str, Any]],
    quantiles: Iterable[float] = (0.5, 0.90, 0.95, 0.99),
) -> Dict[str, Any]:
    """Merge per-shard :meth:`ReservoirQuantiles.state` snapshots.

    Determinism contract (pinned by ``tests/test_trace_replay.py``):

    * **Order-insensitive.**  Each retained sample is weighted by the
      observations it represents (``count / len(samples)`` of its
      shard), all (value, weight) pairs are sorted by that total order,
      and each quantile is the smallest value whose cumulative weight
      reaches ``p`` of the total (the type-1 inverted CDF).  The result
      is a pure function of the *multiset* of shard states — permuting
      the shards cannot change a byte.
    * **Exact when nothing was dropped.**  If every shard retained all
      of its observations (``count == len(samples)``, reported as
      ``"exact": True``), every weight is 1.0 and the merged quantiles
      equal the quantiles of the pooled raw observations — so any shard
      decomposition of the same observation set merges to identical
      bytes.  Otherwise the merge is the standard weighted-sample
      estimate and only identical decompositions are byte-comparable.
    """
    pairs: List[tuple] = []
    total_count = 0
    exact = True
    for state in states:
        count = int(state["count"])
        samples = state["samples"]
        total_count += count
        if count != len(samples):
            exact = False
        if samples:
            weight = count / len(samples)
            pairs.extend((float(v), weight) for v in samples)
    result: Dict[str, Any] = {"count": total_count, "exact": exact}
    pairs.sort()
    total_weight = sum(w for _, w in pairs)
    for p in quantiles:
        if not 0.0 < p < 1.0:
            raise ValueError("quantiles must be in (0, 1)")
        key = f"p{round(p * 100)}"
        if not pairs:
            result[key] = 0.0
            continue
        target = p * total_weight
        cumulative = 0.0
        value = pairs[-1][0]
        for v, w in pairs:
            cumulative += w
            if cumulative >= target:
                value = v
                break
        result[key] = float(value)
    return result


class StreamingSummary:
    """Constant-memory replacement for a stored-sample waiting-time summary.

    Tracks count / mean / min / max exactly and answers quantile queries
    from a bounded sketch.  The default (``sketch="reservoir"``) is one
    shared :class:`ReservoirQuantiles` — robust to the zero-wait atom
    that breaks P² (see the module docstring).  ``sketch="p2"`` keeps
    one :class:`P2Quantile` per tracked quantile instead; it is only
    safe for continuous streams, and quantile queries **fail loudly**
    with :class:`UnsafeSketchError` once the stream's exact-zero
    fraction reaches :data:`ZERO_ATOM_UNSAFE_FRACTION`.
    """

    QUANTILES = (0.5, 0.90, 0.95, 0.99)

    __slots__ = ("_count", "_mean", "_min", "_max", "_reservoir", "_p2",
                 "_zero_count", "sketch")

    #: 16 k samples ≈ 128 KB: rank error ±0.17 % at p95, which matters when
    #: the wait CDF is nearly flat around the tracked percentile (large
    #: value jumps for small rank errors, as in overloaded scenarios)
    DEFAULT_MAX_SAMPLES = 16384

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES,
                 sketch: str = "reservoir") -> None:
        """Start an empty summary using the chosen quantile sketch."""
        if sketch not in ("reservoir", "p2"):
            raise ValueError(f"unknown sketch {sketch!r}; valid: 'reservoir', 'p2'")
        self.sketch = sketch
        self._count = 0
        self._mean = 0.0
        self._min = 0.0
        self._max = 0.0
        self._zero_count = 0
        self._reservoir: Optional[ReservoirQuantiles] = None
        self._p2: Optional[Dict[float, P2Quantile]] = None
        if sketch == "reservoir":
            self._reservoir = ReservoirQuantiles(max_samples)
        else:
            self._p2 = {q: P2Quantile(q) for q in self.QUANTILES}

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def zero_fraction(self) -> float:
        """Fraction of observations that were exactly zero (the wait atom)."""
        return self._zero_count / self._count if self._count else 0.0

    def add(self, value: float) -> None:
        """Feed one observation (running moments + the quantile sketch)."""
        value = float(value)
        self._count += 1
        if self._count == 1:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._mean += (value - self._mean) / self._count
        if value == 0.0:
            self._zero_count += 1
        if self._reservoir is not None:
            self._reservoir.add(value)
        else:
            for estimator in self._p2.values():
                estimator.add(value)

    def extend(self, values: Iterable[float]) -> None:
        """Feed many observations."""
        for value in values:
            self.add(value)

    def quantile(self, p: float) -> float:
        """Current estimate of a quantile in (0, 1).

        The reservoir sketch answers any quantile; the P² sketch only
        the tracked :data:`QUANTILES`, and raises
        :class:`UnsafeSketchError` once the stream's zero atom makes its
        markers untrustworthy — silently returning a stranded estimate
        is exactly the failure mode this guard exists to prevent.
        """
        if self._reservoir is not None:
            return self._reservoir.quantile(p)
        if self._count and self.zero_fraction >= ZERO_ATOM_UNSAFE_FRACTION:
            raise UnsafeSketchError(
                f"P² sketch selected but {self.zero_fraction:.0%} of the "
                f"{self._count} observations are exact zeros (>= "
                f"{ZERO_ATOM_UNSAFE_FRACTION:.0%}): the P² markers cannot "
                "cross a heavy atom and the estimate would be silently "
                "wrong. Use the default sketch='reservoir' for "
                "waiting-time streams."
            )
        estimator = self._p2.get(p)
        if estimator is None:
            raise ValueError(
                f"sketch='p2' only tracks quantiles {self.QUANTILES}, not {p}"
            )
        return estimator.value()

    def summary(self) -> WaitingTimeSummary:
        """Render as the same record the stored-sample path produces."""
        if self._count == 0:
            return WaitingTimeSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return WaitingTimeSummary(
            count=self._count,
            mean=self._mean,
            median=self.quantile(0.5),
            p90=self.quantile(0.90),
            p95=self.quantile(0.95),
            p99=self.quantile(0.99),
            maximum=self._max,
            minimum=self._min,
        )


__all__ = [
    "P2Quantile",
    "ReservoirQuantiles",
    "StreamingSummary",
    "UnsafeSketchError",
    "ZERO_ATOM_UNSAFE_FRACTION",
    "merge_reservoir_states",
]
