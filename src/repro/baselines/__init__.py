"""Baseline controllers LaSS is compared against.

* :mod:`repro.baselines.openwhisk` — the vanilla OpenWhisk behaviour the
  paper compares against in §6.6: a sharding-pool load balancer that
  packs containers onto invokers by memory only (ignoring CPU) and
  prefers to keep each function on its own "home" invoker.  Under the
  overload scenario this over-packs a node, makes it unresponsive, and
  cascades the failure to the remaining invokers.
* :mod:`repro.baselines.static_allocation` — a fixed per-function
  container allocation with no autoscaling.
* :mod:`repro.baselines.reactive` — a Knative-style concurrency-targeted
  reactive autoscaler, used in ablation benchmarks as a model-free
  alternative to LaSS's queueing model.
"""

from repro.baselines.openwhisk import VanillaOpenWhiskController, OpenWhiskConfig
from repro.baselines.static_allocation import StaticAllocationController
from repro.baselines.reactive import ConcurrencyAutoscaler, ReactiveControllerConfig

__all__ = [
    "VanillaOpenWhiskController",
    "OpenWhiskConfig",
    "StaticAllocationController",
    "ConcurrencyAutoscaler",
    "ReactiveControllerConfig",
]
