"""Deprecated shim: the baseline controllers moved to :mod:`repro.policies`.

Since the unified control-plane policy refactor, every controller —
LaSS and the baselines alike — is a registry-registered
:class:`~repro.core.policy.ControlPolicy` living under
:mod:`repro.policies`, runnable through ``kind="simulate"`` scenarios
via ``ControllerSpec(policy=...)``.

This package re-exports the original names so existing specs, tests,
and user code keep working.  **Deprecated**: new code should import
from :mod:`repro.policies` (or better, go through the policy registry
instead of constructing controllers by hand).
"""

from repro.policies.openwhisk import VanillaOpenWhiskController, OpenWhiskConfig
from repro.policies.static_allocation import StaticAllocationController
from repro.policies.reactive import ConcurrencyAutoscaler, ReactiveControllerConfig

__all__ = [
    "VanillaOpenWhiskController",
    "OpenWhiskConfig",
    "StaticAllocationController",
    "ConcurrencyAutoscaler",
    "ReactiveControllerConfig",
]
