"""Deprecated shim: moved to :mod:`repro.policies.reactive`.

The Knative-style reactive autoscaler is now a registry-registered
control policy (``policy="reactive"``).  This module re-exports the
original names for backwards compatibility; new code should import from
:mod:`repro.policies.reactive` or use the policy registry.
"""

from repro.policies.reactive import ConcurrencyAutoscaler, ReactiveControllerConfig

__all__ = ["ConcurrencyAutoscaler", "ReactiveControllerConfig"]
