"""Concurrency-targeted reactive autoscaler (Knative-style baseline).

This is the model-free alternative LaSS's queueing model is implicitly
compared against: instead of solving for the container count that meets
a waiting-time percentile, the reactive scaler keeps the observed
per-container concurrency near a target.  It reuses LaSS's data path
(WRR dispatch) but replaces the sizing model, which makes it a clean
ablation of the paper's "model-driven" contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import math

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container, ContainerState
from repro.core.dispatch import SharedQueueDispatcher
from repro.metrics.collector import EpochSnapshot, FunctionEpochStats, MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request


@dataclass
class ReactiveControllerConfig:
    """Parameters of the concurrency autoscaler."""

    #: desired average in-flight requests per container
    target_concurrency: float = 1.0
    #: how often the scaler evaluates (seconds)
    evaluation_interval: float = 5.0
    #: smoothing factor for the observed concurrency
    smoothing: float = 0.6
    #: never exceed this many containers per function
    max_containers: int = 1000

    def __post_init__(self) -> None:
        """Validate the configuration parameters."""
        if self.target_concurrency <= 0:
            raise ValueError("target_concurrency must be positive")
        if self.evaluation_interval <= 0:
            raise ValueError("evaluation_interval must be positive")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")


class ConcurrencyAutoscaler:
    """Reactive controller: scale to ``ceil(concurrency / target)`` containers."""

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        config: Optional[ReactiveControllerConfig] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        """Wire the autoscaler to the engine, cluster, and metrics sink."""
        self.engine = engine
        self.cluster = cluster
        self.config = config or ReactiveControllerConfig()
        self.metrics = metrics or MetricsCollector()
        self.dispatcher = SharedQueueDispatcher(engine, on_complete=self._on_request_complete)
        self._smoothed_concurrency: Dict[str, float] = {}
        self._started = False
        cluster.on_container_warm(self._on_container_warm)

    def start(self) -> None:
        """Begin the periodic evaluation loop."""
        if self._started:
            return
        self._started = True
        self.engine.schedule(
            self.config.evaluation_interval, self._evaluate,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    # ------------------------------------------------------------------
    # Data path (same WRR dispatch as LaSS)
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> None:
        """Route a request to an idle container or queue it; cold-start the first container."""
        self.metrics.record_request(request)
        containers = self.cluster.warm_containers_of(request.function_name)
        started = self.dispatcher.submit(request, containers)
        if not started and not self.cluster.containers_of(request.function_name):
            self._create(request.function_name, 1)

    def _on_container_warm(self, container: Container) -> None:
        """A container finished cold start: drain queued requests onto it."""
        self.dispatcher.drain(
            container.function_name,
            self.cluster.warm_containers_of(container.function_name),
        )

    def _on_request_complete(self, request: Request, container: Container) -> None:
        """Completion callback: record the completion in the metrics."""
        self.metrics.record_completion(request)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        """One evaluation step: compare observed concurrency to the target and scale."""
        for deployment in self.cluster.deployments:
            name = deployment.name
            live = self.cluster.containers_of(name, include_draining=False)
            in_flight = sum(c.in_flight for c in live) + self.dispatcher.queue_length(name)
            previous = self._smoothed_concurrency.get(name, float(in_flight))
            smoothed = (
                self.config.smoothing * in_flight + (1 - self.config.smoothing) * previous
            )
            self._smoothed_concurrency[name] = smoothed
            desired = min(
                self.config.max_containers,
                max(0, math.ceil(smoothed / self.config.target_concurrency)),
            )
            if desired > len(live):
                self._create(name, desired - len(live))
            elif desired < len(live):
                victims = sorted(live, key=lambda c: c.in_flight)[: len(live) - desired]
                for victim in victims:
                    if victim.in_flight == 0:
                        self.cluster.terminate_container(victim.container_id)
                        self.metrics.increment("terminations")
        self._snapshot()
        self.engine.schedule(
            self.config.evaluation_interval, self._evaluate,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    def _create(self, name: str, count: int) -> None:
        """Create up to ``count`` new containers, capacity permitting."""
        for _ in range(count):
            node = self.cluster.find_node_for(
                self.cluster.deployment(name).cpu, self.cluster.deployment(name).memory_mb
            )
            if node is None:
                return
            self.cluster.create_container(name, node=node)
            self.metrics.increment("creations")

    def _snapshot(self) -> None:
        """Record a per-function epoch snapshot for the timeline metrics."""
        functions: Dict[str, FunctionEpochStats] = {}
        for deployment in self.cluster.deployments:
            live = self.cluster.containers_of(deployment.name)
            functions[deployment.name] = FunctionEpochStats(
                function_name=deployment.name,
                containers=len(live),
                cpu=sum(c.current_cpu for c in live),
                desired_containers=len(live),
                arrival_rate_estimate=self._smoothed_concurrency.get(deployment.name, 0.0),
                service_rate_estimate=0.0,
            )
        self.metrics.record_epoch(
            EpochSnapshot(
                time=self.engine.now,
                overloaded=False,
                total_cpu=self.cluster.total_cpu,
                allocated_cpu=self.cluster.cpu_allocated,
                functions=functions,
            )
        )


__all__ = ["ConcurrencyAutoscaler", "ReactiveControllerConfig"]
