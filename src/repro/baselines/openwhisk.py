"""Deprecated shim: moved to :mod:`repro.policies.openwhisk`.

The vanilla-OpenWhisk baseline is now a registry-registered control
policy (``policy="openwhisk"``).  This module re-exports the original
names for backwards compatibility; new code should import from
:mod:`repro.policies.openwhisk` or use the policy registry.
"""

from repro.policies.openwhisk import OpenWhiskConfig, VanillaOpenWhiskController

__all__ = ["VanillaOpenWhiskController", "OpenWhiskConfig"]
