"""Static allocation baseline: fixed containers per function, no autoscaling.

Useful as the lower bound in ablation benchmarks: it shows what happens
when capacity is provisioned once (e.g. for the mean load) and the
workload then fluctuates — exactly the situation the paper's
model-driven autoscaler exists to avoid.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container
from repro.core.dispatch import SharedQueueDispatcher
from repro.metrics.collector import EpochSnapshot, FunctionEpochStats, MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request


class StaticAllocationController:
    """Dispatches with WRR over a fixed, pre-created container allocation.

    Parameters
    ----------
    allocations:
        Function name → number of standard containers to create at start-up.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: EdgeCluster,
        allocations: Mapping[str, int],
        metrics: Optional[MetricsCollector] = None,
        snapshot_interval: float = 10.0,
    ) -> None:
        """Wire the controller to the engine, cluster, and metrics sink."""
        self.engine = engine
        self.cluster = cluster
        self.allocations = {name: int(count) for name, count in allocations.items()}
        if any(count < 0 for count in self.allocations.values()):
            raise ValueError("allocations must be non-negative")
        self.metrics = metrics or MetricsCollector()
        self.dispatcher = SharedQueueDispatcher(engine, on_complete=self._on_request_complete)
        self.snapshot_interval = float(snapshot_interval)
        self._started = False
        cluster.on_container_warm(self._on_container_warm)

    def start(self) -> None:
        """Create the fixed allocation and begin periodic snapshotting."""
        if self._started:
            return
        self._started = True
        for name, count in self.allocations.items():
            for _ in range(count):
                self.cluster.create_container(name)
                self.metrics.increment("creations")
        self.engine.schedule(
            self.snapshot_interval, self._snapshot_tick,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )

    def dispatch(self, request: Request) -> None:
        """Route one request to an idle container or queue it (shared FCFS queue)."""
        self.metrics.record_request(request)
        containers = self.cluster.warm_containers_of(request.function_name)
        self.dispatcher.submit(request, containers)

    def _on_container_warm(self, container: Container) -> None:
        """A container finished cold start: drain queued requests onto it."""
        self.dispatcher.drain(
            container.function_name,
            self.cluster.warm_containers_of(container.function_name),
        )

    def _on_request_complete(self, request: Request, container: Container) -> None:
        """Completion callback: record the completion in the metrics."""
        self.metrics.record_completion(request)

    def _snapshot_tick(self) -> None:
        """Record a per-function epoch snapshot for the timeline metrics."""
        functions: Dict[str, FunctionEpochStats] = {}
        for deployment in self.cluster.deployments:
            live = self.cluster.containers_of(deployment.name)
            functions[deployment.name] = FunctionEpochStats(
                function_name=deployment.name,
                containers=len(live),
                cpu=sum(c.current_cpu for c in live),
                desired_containers=self.allocations.get(deployment.name, 0),
                arrival_rate_estimate=0.0,
                service_rate_estimate=0.0,
            )
        self.metrics.record_epoch(
            EpochSnapshot(
                time=self.engine.now,
                overloaded=False,
                total_cpu=self.cluster.total_cpu,
                allocated_cpu=self.cluster.cpu_allocated,
                functions=functions,
            )
        )
        self.engine.schedule(
            self.snapshot_interval, self._snapshot_tick,
            priority=SimulationEngine.PRIORITY_CONTROL,
        )


__all__ = ["StaticAllocationController"]
