"""Deprecated shim: moved to :mod:`repro.policies.static_allocation`.

The static-allocation baseline is now a registry-registered control
policy (``policy="static"``).  This module re-exports the original
names for backwards compatibility; new code should import from
:mod:`repro.policies.static_allocation` or use the policy registry.
"""

from repro.policies.static_allocation import StaticAllocationController

__all__ = ["StaticAllocationController"]
